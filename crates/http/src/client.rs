//! A minimal blocking HTTP/1.1 client — the test-harness and
//! load-generator half of the protocol. Keep-alive by default: one
//! [`HttpClient`] drives many requests over one connection, which is what
//! the closed-loop bench needs to measure server-side queueing rather
//! than connection setup.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, lossily.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects with a 5 s I/O deadline.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit read/write deadline.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Request/response traffic is latency-bound: never trade a
        // round-trip for segment coalescing.
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream })
    }

    /// Raw access, for fault-injection tests (half-writes, early close).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.send("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed responses.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.send("POST", path, Some(body))
    }

    /// Writes one request and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed responses
    /// (`ErrorKind::InvalidData`).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or_default();
        let mut frame = format!(
            "{method} {path} HTTP/1.1\r\nHost: pop\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        // One write per request: a torn head/body pair costs a Nagle +
        // delayed-ACK round-trip (~40ms) per exchange.
        frame.extend_from_slice(body.as_bytes());
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, what.to_string())
}

/// Reads exactly one response (status line, headers, `Content-Length`
/// body) from `r`.
///
/// # Errors
///
/// `InvalidData` for malformed responses, `UnexpectedEof` for truncation,
/// plus any transport error.
pub fn read_response(r: &mut impl Read) -> std::io::Result<ClientResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = crate::parser::find_head_end(&buf) {
            break end;
        }
        if buf.len() > 1024 * 1024 {
            return Err(bad("response head too large"));
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };
    let head = std::str::from_utf8(buf.get(..head_end.head_len).unwrap_or_default())
        .map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.splitn(3, ' ');
    if parts.next() != Some("HTTP/1.1") {
        return Err(bad("not an HTTP/1.1 response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing status code"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    let mut body: Vec<u8> = buf.get(head_end.consumed..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_serialized_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 11\r\nConnection: keep-alive\r\n\r\n{\"ok\":true}";
        let res = read_response(&mut raw.as_slice()).unwrap();
        assert_eq!(res.status, 200);
        assert_eq!(res.header("content-type"), Some("application/json"));
        assert_eq!(res.text(), "{\"ok\":true}");
    }

    #[test]
    fn truncated_responses_are_errors_not_hangs() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        let err = read_response(&mut raw.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        let raw = b"HTTP/2 200\r\n\r\n";
        assert_eq!(
            read_response(&mut raw.as_slice()).unwrap_err().kind(),
            ErrorKind::InvalidData
        );
    }
}
