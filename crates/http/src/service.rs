//! The forecast service: named models, their engines, and HTTP routing.
//!
//! A [`ForecastService`] owns one [`ForecastEngine`] per registered model
//! (plus an optional quantized sibling per model), all recording into a
//! single shared [`ServeStats`] so `/v1/stats` covers the fleet and
//! `/v1/models` can report the per-model split. Routing lives in
//! [`ForecastService::handle`] — a pure `Request -> Response` function the
//! server worker pool (and any direct test) calls; it never panics: every
//! failure path is a typed error response, which is what lets pop-lint
//! root the panic-path rule here.

use crate::api::{self, ApiError, ForecastRequest};
use crate::parser::Request;
use crate::response::Response;
use pop_core::Pix2Pix;
use pop_nn::Tensor;
use pop_obs::json;
use pop_serve::{
    EngineConfig, ForecastClient, ForecastEngine, ModelStatsSnapshot, ServeError, ServeStats,
    StatsSnapshot,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One registered model: its f32 engine, the optional quantized sibling,
/// and the input geometry requests are validated against.
#[derive(Debug)]
struct ModelSlot {
    engine: ForecastEngine,
    client: ForecastClient,
    quant_engine: Option<ForecastEngine>,
    quant_client: Option<ForecastClient>,
    channels: usize,
    resolution: usize,
}

/// Builder for a [`ForecastService`]; register models, then `build`.
#[derive(Debug, Default)]
pub struct ServiceBuilder {
    engine_config: EngineConfig,
    entries: Vec<(String, Pix2Pix, bool)>,
}

impl ServiceBuilder {
    pub fn new() -> Self {
        ServiceBuilder {
            engine_config: EngineConfig::default(),
            entries: Vec::new(),
        }
    }

    /// The [`EngineConfig`] every per-model engine starts with (its
    /// `model_label` is overwritten per model).
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Registers `model` under `name`, served by f32 replicas only.
    pub fn model(mut self, name: &str, model: Pix2Pix) -> Self {
        self.entries.push((name.to_string(), model, false));
        self
    }

    /// Registers `model` under `name` with both f32 replicas and an i8
    /// quantized sibling engine (requests opt in via `"quantized": true`).
    pub fn model_with_quantized(mut self, name: &str, model: Pix2Pix) -> Self {
        self.entries.push((name.to_string(), model, true));
        self
    }

    /// Starts every engine. The first registered model is the default
    /// target of `POST /v1/forecast` when the body names none.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an empty registry or a
    /// duplicate name, and propagates engine-start failures.
    pub fn build(self) -> Result<ForecastService, ServeError> {
        let Some(first) = self.entries.first() else {
            return Err(ServeError::BadConfig(
                "a service needs at least one model".into(),
            ));
        };
        let default_model = first.0.clone();
        let stats = Arc::new(ServeStats::default());
        let mut slots: BTreeMap<String, ModelSlot> = BTreeMap::new();
        for (name, model, quantize) in self.entries {
            if slots.contains_key(&name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate model name {name:?}"
                )));
            }
            let hint = model.config().clone();
            let channels = hint.input_channels();
            let resolution = hint.resolution;
            let quant = if quantize {
                Some(model.quantized())
            } else {
                None
            };
            let mut config = self.engine_config.clone();
            config.model_label = Some(name.clone());
            let engine = ForecastEngine::start_with_stats(model, config, Arc::clone(&stats))?;
            let client = engine.client();
            let (quant_engine, quant_client) = match quant {
                Some(snapshot) => {
                    let mut config = self.engine_config.clone();
                    config.model_label = Some(format!("{name}/quant"));
                    let engine = ForecastEngine::start_quantized_with_stats(
                        snapshot,
                        &hint,
                        config,
                        Arc::clone(&stats),
                    )?;
                    let client = engine.client();
                    (Some(engine), Some(client))
                }
                None => (None, None),
            };
            slots.insert(
                name,
                ModelSlot {
                    engine,
                    client,
                    quant_engine,
                    quant_client,
                    channels,
                    resolution,
                },
            );
        }
        Ok(ForecastService {
            slots,
            stats,
            default_model,
        })
    }
}

/// A routable fleet of forecast engines — see the module docs.
#[derive(Debug)]
pub struct ForecastService {
    slots: BTreeMap<String, ModelSlot>,
    stats: Arc<ServeStats>,
    default_model: String,
}

impl ForecastService {
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// Routes one request. Infallible by construction: anything wrong
    /// becomes an error response.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_with(req, None)
    }

    /// [`ForecastService::handle`] with an optional pre-rendered JSON
    /// object the server layer injects as the `"http"` member of
    /// `/v1/stats` (transport counters the service cannot see).
    pub fn handle_with(&self, req: &Request, http_stats_json: Option<&str>) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(
                200,
                format!("{{\"status\": \"ok\", \"models\": {}}}", self.slots.len()),
            ),
            ("GET", "/v1/models") => Response::json(200, self.render_models()),
            ("GET", "/v1/stats") => Response::json(200, self.render_stats(http_stats_json)),
            ("POST", "/v1/forecast") => match api::parse_forecast_request(&req.body) {
                Ok(parsed) => self.answer_forecast(parsed),
                Err(e) => Response::error(e.status, &e.message),
            },
            ("POST", path) => match model_route(path) {
                Some(name) => match api::parse_forecast_request(&req.body) {
                    Ok(mut parsed) => {
                        // The path names the model; a conflicting body is
                        // a client error, an absent one is the idiom.
                        match parsed.model.as_deref() {
                            Some(other) if other != name => {
                                return Response::error(
                                    400,
                                    "body \"model\" conflicts with the path",
                                )
                            }
                            _ => parsed.model = Some(name.to_string()),
                        }
                        self.answer_forecast(parsed)
                    }
                    Err(e) => Response::error(e.status, &e.message),
                },
                None => self.method_or_not_found(&req.path),
            },
            _ => self.method_or_not_found(&req.path),
        }
    }

    fn method_or_not_found(&self, path: &str) -> Response {
        match path {
            "/healthz" | "/v1/models" | "/v1/stats" => {
                Response::error(405, "method not allowed").header("Allow", "GET")
            }
            "/v1/forecast" => Response::error(405, "method not allowed").header("Allow", "POST"),
            _ => Response::error(404, "no such route"),
        }
    }

    fn answer_forecast(&self, parsed: ForecastRequest) -> Response {
        let quantized = parsed.quantized;
        let name = match parsed.model {
            Some(name) => name,
            None => self.default_model.clone(),
        };
        let Some(slot) = self.slots.get(&name) else {
            return Response::error(404, &format!("unknown model {name:?}"));
        };
        let (client, label) = if quantized {
            match &slot.quant_client {
                Some(client) => (client, format!("{name}/quant")),
                None => {
                    return Response::error(
                        400,
                        &format!("model {name:?} has no quantized replicas"),
                    )
                }
            }
        } else {
            (&slot.client, name.clone())
        };
        let tensor = match build_input(parsed.features, slot.channels, slot.resolution) {
            Ok(t) => t,
            Err(e) => return Response::error(e.status, &e.message),
        };
        match client.try_submit(&tensor) {
            Ok(pending) => match pending.wait() {
                Ok(out) => {
                    Response::json(200, api::render_forecast_response(&label, quantized, &out))
                }
                // Engine errors (including a caught worker panic) become
                // per-request 500s; the connection and the engine live on.
                Err(e) => Response::error(500, &format!("forecast failed: {e}")),
            },
            Err(ServeError::QueueFull) => {
                Response::error(429, "forecast queue is full").header("Retry-After", "1")
            }
            Err(ServeError::BadInput(m)) => Response::error(400, &m),
            Err(ServeError::ShuttingDown) => Response::error(503, "service is shutting down"),
            Err(e) => Response::error(500, &format!("submit failed: {e}")),
        }
    }

    fn render_models(&self) -> String {
        let snap = self.stats.snapshot();
        let mut out = String::from("{\"default\": ");
        out.push_str(&json::str_lit(&self.default_model));
        out.push_str(", \"models\": [");
        for (i, (name, slot)) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"channels\": {}, \"resolution\": {}, \"quantized\": {}, \"queue_depth\": {}, \"requests\": {}, \"quant_requests\": {}}}",
                json::str_lit(name),
                slot.channels,
                slot.resolution,
                slot.quant_client.is_some(),
                slot.engine.queue_depth(),
                render_model_stats(&snap, name),
                match &slot.quant_engine {
                    Some(_) => render_model_stats(&snap, &format!("{name}/quant")),
                    None => "null".to_string(),
                },
            ));
        }
        out.push_str("]}");
        out
    }

    fn render_stats(&self, http_stats_json: Option<&str>) -> String {
        let snap = self.stats.snapshot();
        let mut out = String::from("{\"serve\": ");
        out.push_str(&render_snapshot(&snap));
        out.push_str(", \"http\": ");
        out.push_str(http_stats_json.unwrap_or("null"));
        out.push_str(", \"metrics\": ");
        out.push_str(&render_metrics());
        out.push('}');
        out
    }

    /// Point-in-time service-wide counters (all engines, both kinds).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.slots.keys().cloned().collect()
    }

    /// The model `POST /v1/forecast` targets when the body names none.
    pub fn default_model(&self) -> &str {
        &self.default_model
    }

    /// A direct in-process client onto one engine — the seam the golden
    /// determinism tests compare the HTTP path against.
    pub fn client(&self, model: &str, quantized: bool) -> Option<ForecastClient> {
        let slot = self.slots.get(model)?;
        if quantized {
            slot.quant_client.clone()
        } else {
            Some(slot.client.clone())
        }
    }

    /// Current depth of one model's f32 request queue.
    pub fn queue_depth(&self, model: &str) -> Option<usize> {
        self.slots.get(model).map(|s| s.engine.queue_depth())
    }

    /// Drains and joins every engine, returning the final counters.
    pub fn shutdown(self) -> StatsSnapshot {
        for (_, slot) in self.slots {
            slot.engine.shutdown();
            if let Some(engine) = slot.quant_engine {
                engine.shutdown();
            }
        }
        self.stats.snapshot()
    }
}

/// `/v1/models/<name>/forecast` → `<name>`; the per-scenario endpoint
/// sugar over the body's `"model"` field.
fn model_route(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/v1/models/")?;
    let name = rest.strip_suffix("/forecast")?;
    if name.is_empty() || name.contains('/') {
        return None;
    }
    Some(name)
}

fn build_input(features: Vec<f32>, channels: usize, resolution: usize) -> Result<Tensor, ApiError> {
    let shape = [1, channels, resolution, resolution];
    let expected =
        api::checked_volume(shape).ok_or_else(|| ApiError::bad("model geometry overflows"))?;
    if features.len() != expected {
        return Err(ApiError::bad(format!(
            "\"features\" has {} values; model wants {expected} ({channels}x{resolution}x{resolution})",
            features.len()
        )));
    }
    Ok(Tensor::from_vec(shape, features))
}

fn render_model_stats(snap: &StatsSnapshot, label: &str) -> String {
    let found = snap.per_model.iter().find(|m| m.model == label);
    let zero = ModelStatsSnapshot {
        model: label.to_string(),
        completed: 0,
        failed: 0,
        mean_latency_us: 0.0,
        p50_latency_us: 0,
        p99_latency_us: 0,
    };
    let m = found.unwrap_or(&zero);
    format!(
        "{{\"completed\": {}, \"failed\": {}, \"mean_latency_us\": {}, \"p50_latency_us\": {}, \"p99_latency_us\": {}}}",
        m.completed,
        m.failed,
        json::num(m.mean_latency_us),
        m.p50_latency_us,
        m.p99_latency_us
    )
}

fn render_snapshot(snap: &StatsSnapshot) -> String {
    let mut out = format!(
        "{{\"submitted\": {}, \"rejected\": {}, \"completed\": {}, \"failed\": {}, \"batches\": {}, \"max_batch\": {}, \"mean_batch_occupancy\": {}, \"mean_latency_us\": {}, \"p50_latency_us\": {}, \"p99_latency_us\": {}, \"max_latency_us\": {}, \"quant_completed\": {}, \"p50_quant_latency_us\": {}, \"p99_quant_latency_us\": {}, \"per_model\": [",
        snap.submitted,
        snap.rejected,
        snap.completed,
        snap.failed,
        snap.batches,
        snap.max_batch,
        json::num(snap.mean_batch_occupancy),
        json::num(snap.mean_latency_us),
        snap.p50_latency_us,
        snap.p99_latency_us,
        snap.max_latency_us,
        snap.quant_completed,
        snap.p50_quant_latency_us,
        snap.p99_quant_latency_us,
    );
    for (i, m) in snap.per_model.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"model\": {}, \"stats\": {}}}",
            json::str_lit(&m.model),
            render_model_stats(snap, &m.model)
        ));
    }
    out.push_str("]}");
    out
}

/// The global [`pop_obs`] registry as a JSON object — the `/v1/stats`
/// metrics dump. Registry maps are BTreeMaps, so the order is stable.
fn render_metrics() -> String {
    let snap = pop_obs::global().snapshot();
    let mut out = String::from("{\"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json::str_lit(name), value));
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json::str_lit(name), json::num(*value)));
    }
    out.push_str("}, \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
            json::str_lit(name),
            h.count,
            h.percentile(0.50),
            h.percentile(0.99),
            h.max
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::ExperimentConfig;
    use std::time::Duration;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        }
    }

    fn tiny_model(seed: u64) -> Pix2Pix {
        Pix2Pix::new(&tiny_config(), seed).unwrap()
    }

    fn tiny_engine_config() -> EngineConfig {
        EngineConfig {
            workers: 1,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: String) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.into_bytes(),
            keep_alive: true,
        }
    }

    fn features(seed: u64) -> Vec<f32> {
        let cfg = tiny_config();
        Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, seed)
            .data()
            .to_vec()
    }

    fn service() -> ForecastService {
        ForecastService::builder()
            .engine_config(tiny_engine_config())
            .model_with_quantized("base", tiny_model(3))
            .model("alt", tiny_model(4))
            .build()
            .unwrap()
    }

    #[test]
    fn healthz_and_models_routes_answer() {
        let svc = service();
        let res = svc.handle(&get("/healthz"));
        assert_eq!(res.status(), 200);
        let body = String::from_utf8(res.body().to_vec()).unwrap();
        assert!(body.contains("\"models\": 2"));

        let res = svc.handle(&get("/v1/models"));
        assert_eq!(res.status(), 200);
        let doc = json::parse(std::str::from_utf8(res.body()).unwrap()).unwrap();
        assert_eq!(doc.get("default").unwrap().as_str(), Some("base"));
        let models = doc.get("models").unwrap().as_array().unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].get("name").unwrap().as_str(), Some("alt"));
        assert_eq!(models[1].get("name").unwrap().as_str(), Some("base"));
        svc.shutdown();
    }

    #[test]
    fn forecast_routes_to_the_named_model_and_reports_per_model_stats() {
        let svc = service();
        let body = api::render_forecast_request(Some("alt"), false, &features(9));
        let res = svc.handle(&post("/v1/forecast", body));
        assert_eq!(res.status(), 200);
        let out = api::parse_forecast_response(res.body()).unwrap();
        let shape = out.shape();
        assert_eq!((shape[0], shape[2], shape[3]), (1, 16, 16));

        // Default model (no "model" field) and the quantized flag.
        let body = api::render_forecast_request(None, true, &features(10));
        let res = svc.handle(&post("/v1/forecast", body));
        assert_eq!(res.status(), 200, "default model serves quantized");

        let snap = svc.stats();
        let labels: Vec<&str> = snap.per_model.iter().map(|m| m.model.as_str()).collect();
        assert!(labels.contains(&"alt"));
        assert!(labels.contains(&"base/quant"));
        svc.shutdown();
    }

    #[test]
    fn per_scenario_endpoint_sugar_routes_by_path() {
        let svc = service();
        let body = api::render_forecast_request(None, false, &features(11));
        let res = svc.handle(&post("/v1/models/alt/forecast", body));
        assert_eq!(res.status(), 200);
        // Conflicting body model is a client error.
        let body = api::render_forecast_request(Some("base"), false, &features(11));
        let res = svc.handle(&post("/v1/models/alt/forecast", body));
        assert_eq!(res.status(), 400);
        svc.shutdown();
    }

    #[test]
    fn error_routing_covers_the_4xx_family() {
        let svc = service();
        assert_eq!(svc.handle(&get("/nope")).status(), 404);
        assert_eq!(svc.handle(&get("/v1/forecast")).status(), 405);
        assert_eq!(svc.handle(&post("/healthz", String::new())).status(), 405);
        let res = svc.handle(&post("/v1/forecast", "not json".to_string()));
        assert_eq!(res.status(), 400);
        let body = api::render_forecast_request(Some("missing"), false, &features(1));
        assert_eq!(svc.handle(&post("/v1/forecast", body)).status(), 404);
        let body = api::render_forecast_request(Some("alt"), true, &features(1));
        assert_eq!(
            svc.handle(&post("/v1/forecast", body)).status(),
            400,
            "alt has no quantized replicas"
        );
        let body = api::render_forecast_request(Some("alt"), false, &[1.0, 2.0]);
        let res = svc.handle(&post("/v1/forecast", body));
        assert_eq!(res.status(), 400, "wrong feature count");
        svc.shutdown();
    }

    #[test]
    fn stats_route_reports_serve_and_metrics_sections() {
        let svc = service();
        let body = api::render_forecast_request(None, false, &features(12));
        assert_eq!(svc.handle(&post("/v1/forecast", body)).status(), 200);
        let res = svc.handle(&get("/v1/stats"));
        assert_eq!(res.status(), 200);
        let doc = json::parse(std::str::from_utf8(res.body()).unwrap()).unwrap();
        let serve = doc.get("serve").unwrap();
        assert!(serve.get("completed").unwrap().as_u64().unwrap() >= 1);
        assert!(doc.get("metrics").unwrap().get("counters").is_some());
        assert_eq!(doc.get("http"), Some(&json::Value::Null));
        // The server layer can inject its own section.
        let res = svc.handle_with(&get("/v1/stats"), Some("{\"requests\": 5}"));
        let doc = json::parse(std::str::from_utf8(res.body()).unwrap()).unwrap();
        assert_eq!(
            doc.get("http").unwrap().get("requests").unwrap().as_u64(),
            Some(5)
        );
        svc.shutdown();
    }

    #[test]
    fn builder_rejects_empty_and_duplicate_registrations() {
        assert!(matches!(
            ForecastService::builder().build(),
            Err(ServeError::BadConfig(_))
        ));
        let result = ForecastService::builder()
            .engine_config(tiny_engine_config())
            .model("m", tiny_model(1))
            .model("m", tiny_model(2))
            .build();
        assert!(matches!(result, Err(ServeError::BadConfig(_))));
    }
}
