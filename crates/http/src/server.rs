//! The TCP front end: accept thread, connection queue, worker pool.
//!
//! An accept thread pushes inbound [`TcpStream`]s into a bounded
//! [`pop_exec::BoundedQueue`] (overload answers a minimal `503` at accept
//! time — admission control *before* a worker is committed); a
//! [`pop_exec::WorkerPool`] of connection workers drains it, each running
//! [`RequestParser`]-driven keep-alive loops with read/write deadlines.
//! Shutdown is graceful by construction: the flag stops new connections,
//! a self-connect wakes the blocking accept, the queue closes, and every
//! worker finishes its in-flight request before exiting — bounded by the
//! read deadline. Nothing on a connection path panics (pop-lint roots the
//! panic rule at every function in this file).

use crate::parser::{ParserLimits, RequestParser};
use crate::response::Response;
use crate::service::ForecastService;
use pop_exec::{BoundedQueue, PushError, WorkerPool};
use pop_serve::StatsSnapshot;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of an [`HttpServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Connection worker threads — concurrently served connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this, accepts
    /// answer `503` immediately.
    pub conn_backlog: usize,
    /// Socket read deadline: bounds slow-trickle (slowloris) requests,
    /// idle keep-alive lifetime, and the shutdown drain.
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// Requests served over one connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Request parsing limits.
    pub limits: ParserLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            conn_backlog: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            limits: ParserLimits::default(),
        }
    }
}

/// Transport-layer counters, mirrored into the global [`pop_obs`]
/// registry under `http.*` and snapshotted per server for tests and the
/// `/v1/stats` `"http"` section.
#[derive(Debug, Default)]
pub struct HttpStats {
    connections: AtomicU64,
    accept_rejected: AtomicU64,
    requests: AtomicU64,
    keepalive_reuses: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    parse_errors: AtomicU64,
    timeouts: AtomicU64,
    write_errors: AtomicU64,
    active: AtomicU64,
}

impl HttpStats {
    fn record_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => self.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> HttpStatsSnapshot {
        HttpStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            accept_rejected: self.accept_rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`HttpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HttpStatsSnapshot {
    pub connections: u64,
    pub accept_rejected: u64,
    pub requests: u64,
    pub keepalive_reuses: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    pub parse_errors: u64,
    pub timeouts: u64,
    pub write_errors: u64,
}

impl HttpStatsSnapshot {
    /// The `"http"` section of `/v1/stats`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"connections\": {}, \"accept_rejected\": {}, \"requests\": {}, \"keepalive_reuses\": {}, \"responses_2xx\": {}, \"responses_4xx\": {}, \"responses_5xx\": {}, \"parse_errors\": {}, \"timeouts\": {}, \"write_errors\": {}}}",
            self.connections,
            self.accept_rejected,
            self.requests,
            self.keepalive_reuses,
            self.responses_2xx,
            self.responses_4xx,
            self.responses_5xx,
            self.parse_errors,
            self.timeouts,
            self.write_errors,
        )
    }
}

/// Mirrors of the per-server counters in the global obs registry — the
/// canonical `http.*` names OBS_NAMES.md inventories.
#[derive(Debug)]
struct ObsMirror {
    connections: Arc<pop_obs::Counter>,
    requests: Arc<pop_obs::Counter>,
    keepalive_reuses: Arc<pop_obs::Counter>,
    queue_full: Arc<pop_obs::Counter>,
    parse_errors: Arc<pop_obs::Counter>,
    timeouts: Arc<pop_obs::Counter>,
    write_errors: Arc<pop_obs::Counter>,
    request_us: Arc<pop_obs::Histogram>,
    active: Arc<pop_obs::Gauge>,
}

impl ObsMirror {
    fn register() -> ObsMirror {
        let registry = pop_obs::global();
        ObsMirror {
            connections: registry.counter("http.connections"),
            requests: registry.counter("http.requests"),
            keepalive_reuses: registry.counter("http.keepalive.reuses"),
            queue_full: registry.counter("http.queue_full"),
            parse_errors: registry.counter("http.parse_errors"),
            timeouts: registry.counter("http.timeouts"),
            write_errors: registry.counter("http.write_errors"),
            request_us: registry.histogram("http.request_us"),
            active: registry.gauge("http.connections.active"),
        }
    }
}

/// Everything [`HttpServer::shutdown`] learned while draining.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Final serve-layer counters (all engines, drained).
    pub serve: StatsSnapshot,
    /// Final transport-layer counters.
    pub http: HttpStatsSnapshot,
    /// Connection workers that panicked (the invariant: always zero).
    pub worker_panics: usize,
}

/// The HTTP/1.1 server fronting a [`ForecastService`].
#[derive(Debug)]
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<BoundedQueue<TcpStream>>,
    workers: WorkerPool,
    service: Option<Arc<ForecastService>>,
    stats: Arc<HttpStats>,
    worker_panics: usize,
}

impl HttpServer {
    /// Binds, spawns the accept thread and the connection workers, and
    /// starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn start(service: ForecastService, config: ServerConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::named(
            config.conn_backlog.max(1),
            "http_conns",
        ));
        let stats = Arc::new(HttpStats::default());
        let obs = Arc::new(ObsMirror::register());
        let service = Arc::new(service);

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let stats = Arc::clone(&stats);
            let obs = Arc::clone(&obs);
            std::thread::Builder::new()
                .name("http-accept".to_string())
                .spawn(move || accept_loop(&listener, &shutdown, &conns, &stats, &obs))?
        };

        let workers = WorkerPool::spawn("http", config.workers.max(1), |_| {
            let conns = Arc::clone(&conns);
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let obs = Arc::clone(&obs);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            move || {
                while let Some(stream) = conns.pop() {
                    let _span = pop_obs::span!("http_conn");
                    stats.active.fetch_add(1, Ordering::Relaxed);
                    obs.active.set(stats.active.load(Ordering::Relaxed) as f64);
                    handle_connection(stream, &service, &config, &stats, &obs, &shutdown);
                    stats.active.fetch_sub(1, Ordering::Relaxed);
                    obs.active.set(stats.active.load(Ordering::Relaxed) as f64);
                }
            }
        });

        Ok(HttpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
            workers,
            service: Some(service),
            stats,
            worker_panics: 0,
        })
    }

    /// The bound address (the ephemeral port when configured with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live transport counters.
    pub fn http_stats(&self) -> HttpStatsSnapshot {
        self.stats.snapshot()
    }

    /// Live serve-layer counters.
    pub fn serve_stats(&self) -> StatsSnapshot {
        match &self.service {
            Some(service) => service.stats(),
            None => pop_serve::ServeStats::default().snapshot(),
        }
    }

    /// Graceful drain: stop accepting, serve every in-flight request,
    /// join every thread, shut the engines down, report what happened.
    pub fn shutdown(mut self) -> DrainReport {
        self.close_and_join();
        let serve = match self.service.take().map(Arc::try_unwrap) {
            // All worker clones are gone after the join, so this is the
            // expected path: drain the engines and take final counters.
            Some(Ok(service)) => service.shutdown(),
            Some(Err(service)) => service.stats(),
            None => pop_serve::ServeStats::default().snapshot(),
        };
        DrainReport {
            serve,
            http: self.stats.snapshot(),
            worker_panics: self.worker_panics,
        }
    }

    fn close_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway self-connection; the
        // accept loop sees the flag and exits before queueing it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.conns.close();
        self.worker_panics += self.workers.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    conns: &BoundedQueue<TcpStream>,
    stats: &HttpStats,
    obs: &ObsMirror,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up self-connection, or a late arrival
        }
        stats.connections.fetch_add(1, Ordering::Relaxed);
        obs.connections.inc();
        match conns.try_push(stream) {
            Ok(()) => {}
            Err(PushError::Full(mut stream)) => {
                // Admission control at the door: answer 503 without
                // committing a worker, so overload degrades predictably.
                stats.accept_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(503, "connection backlog full")
                    .header("Retry-After", "1")
                    .write_to(&mut stream, false);
            }
            Err(PushError::Closed(_)) => return,
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &ForecastService,
    config: &ServerConfig,
    stats: &HttpStats,
    obs: &ObsMirror,
    shutdown: &AtomicBool,
) {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    // Answers must leave now, not after a Nagle coalescing window: a
    // keep-alive request/response exchange never benefits from delay.
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(config.limits.clone());
    let mut served = 0usize;
    loop {
        // Drain every complete buffered request (pipelining) before the
        // next socket read.
        loop {
            match parser.poll() {
                Ok(Some(req)) => {
                    let _span = pop_obs::span!("http_request");
                    let started = Instant::now();
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    obs.requests.inc();
                    if served > 0 {
                        stats.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                        obs.keepalive_reuses.inc();
                    }
                    // Only the stats route pays for rendering the
                    // transport section.
                    let http_json = if req.path == "/v1/stats" {
                        Some(stats.snapshot().render_json())
                    } else {
                        None
                    };
                    let response = service.handle_with(&req, http_json.as_deref());
                    if response.status() == 429 {
                        obs.queue_full.inc();
                    }
                    served += 1;
                    let keep_alive = req.keep_alive
                        && served < config.max_requests_per_conn
                        && !shutdown.load(Ordering::SeqCst);
                    stats.record_status(response.status());
                    obs.request_us.record_duration(started.elapsed());
                    if response.write_to(&mut stream, keep_alive).is_err() {
                        // Peer went away mid-response: drop the
                        // connection, never the worker.
                        stats.write_errors.fetch_add(1, Ordering::Relaxed);
                        obs.write_errors.inc();
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                    obs.parse_errors.inc();
                    stats.record_status(err.status());
                    let _ =
                        Response::error(err.status(), &err.reason()).write_to(&mut stream, false);
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) && parser.buffered() == 0 {
            return; // drained: no partial request in flight
        }
        match parser.read_from(&mut stream) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                obs.timeouts.inc();
                if parser.buffered() > 0 {
                    // A slow-trickling (slowloris-style) request hit the
                    // read deadline mid-head: answer and hang up.
                    stats.record_status(408);
                    let _ = Response::error(408, "request timed out").write_to(&mut stream, false);
                }
                return;
            }
            Err(_) => return, // reset / aborted
        }
    }
}
