//! An incremental, bounded HTTP/1.1 request parser.
//!
//! The parser owns an accumulation buffer: the connection loop feeds it
//! raw socket reads ([`RequestParser::read_from`]) and polls for complete
//! requests ([`RequestParser::poll`]). Nothing here trusts the peer —
//! every limit in [`ParserLimits`] is enforced *before* the offending
//! bytes are buffered further, every malformed input becomes a typed
//! [`ParseError`] with an HTTP status, and no input can make any function
//! in this module panic (property-tested over arbitrary byte fragments in
//! `tests/parser_fuzz.rs`).
//!
//! Scope: `HTTP/1.0` and `HTTP/1.1` requests with `Content-Length` bodies
//! (or none). `Transfer-Encoding` is answered with `501 Not Implemented`
//! rather than implemented incorrectly; header obs-folding (a continuation
//! line) is rejected per RFC 7230 §3.2.4.

use std::io::Read;

/// Hard limits the parser enforces on every request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParserLimits {
    /// Largest request head (request line + headers + terminator), bytes.
    pub max_head_bytes: usize,
    /// Most header fields accepted in one request.
    pub max_headers: usize,
    /// Largest `Content-Length` accepted, bytes.
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            // Feature maps are dense float arrays: a 4×64×64 payload in
            // decimal JSON runs ~200 KiB, so leave generous headroom.
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One parsed request. Header names are lower-cased at parse time; values
/// keep their bytes with surrounding whitespace trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default, overridden by `Connection` headers).
    pub keep_alive: bool,
}

impl Request {
    /// First value of the (lower-cased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed, mapped onto response statuses by
/// [`ParseError::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The head outgrew [`ParserLimits::max_head_bytes`] → 431.
    HeadTooLarge,
    /// More fields than [`ParserLimits::max_headers`] → 431.
    TooManyHeaders,
    /// `Content-Length` exceeds [`ParserLimits::max_body_bytes`] → 413.
    BodyTooLarge(u64),
    /// Syntactically invalid request → 400.
    Bad(&'static str),
    /// Valid but unimplemented (`Transfer-Encoding`) → 501.
    Unsupported(&'static str),
}

impl ParseError {
    /// The HTTP status a server should answer this error with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge | ParseError::TooManyHeaders => 431,
            ParseError::BodyTooLarge(_) => 413,
            ParseError::Bad(_) => 400,
            ParseError::Unsupported(_) => 501,
        }
    }

    /// A short human-readable reason for the error body.
    pub fn reason(&self) -> String {
        match self {
            ParseError::HeadTooLarge => "request head too large".to_string(),
            ParseError::TooManyHeaders => "too many header fields".to_string(),
            ParseError::BodyTooLarge(n) => format!("content-length {n} exceeds limit"),
            ParseError::Bad(what) => format!("malformed request: {what}"),
            ParseError::Unsupported(what) => format!("unsupported: {what}"),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.reason(), self.status())
    }
}

impl std::error::Error for ParseError {}

/// The incremental parser: feed bytes, poll requests.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    limits: ParserLimits,
}

impl RequestParser {
    pub fn new(limits: ParserLimits) -> Self {
        RequestParser {
            buf: Vec::with_capacity(1024),
            limits,
        }
    }

    /// Appends raw bytes (a socket read) to the accumulation buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the buffer; returns the byte count (0 =
    /// EOF). Lives here so connection loops never touch raw slices.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `read` error (timeouts included).
    pub fn read_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk)?;
        self.feed(chunk.get(..n).unwrap_or_default());
        Ok(n)
    }

    /// Bytes buffered but not yet consumed by a completed request. A
    /// non-zero value after a read timeout distinguishes a slow-trickling
    /// request (answer 408) from an idle keep-alive connection.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request from the buffer.
    ///
    /// Returns `Ok(Some(_))` and drains the consumed bytes (pipelined
    /// follow-up requests stay buffered), `Ok(None)` when more input is
    /// needed, and `Err(_)` when the buffered bytes can never become a
    /// valid request — the connection should answer the error and close.
    ///
    /// # Errors
    ///
    /// See [`ParseError`].
    pub fn poll(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_end.head_len > self.limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        let head = self.buf.get(..head_end.head_len).unwrap_or_default();
        let head =
            std::str::from_utf8(head).map_err(|_| ParseError::Bad("non-UTF-8 request head"))?;
        let mut lines = split_head_lines(head);
        let request_line = lines.next().ok_or(ParseError::Bad("empty request"))?;
        let (method, path, keep_alive_default) = parse_request_line(request_line)?;

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if headers.len() >= self.limits.max_headers {
                return Err(ParseError::TooManyHeaders);
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                return Err(ParseError::Bad("obsolete header folding"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(ParseError::Bad("header without ':'"))?;
            if name.is_empty() || !name.bytes().all(is_token_byte) {
                return Err(ParseError::Bad("invalid header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(ParseError::Unsupported("transfer-encoding"));
        }
        let content_length = content_length(&headers)?;
        if content_length > self.limits.max_body_bytes as u64 {
            return Err(ParseError::BodyTooLarge(content_length));
        }
        let content_length = content_length as usize;

        let total = head_end.consumed.saturating_add(content_length);
        if self.buf.len() < total {
            return Ok(None); // body still arriving
        }
        let body = self
            .buf
            .get(head_end.consumed..total)
            .unwrap_or_default()
            .to_vec();
        self.buf.drain(..total);

        let keep_alive = match headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.to_ascii_lowercase())
        {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => keep_alive_default,
        };

        Ok(Some(Request {
            method,
            path,
            headers,
            body,
            keep_alive,
        }))
    }
}

/// Where the request head ends: `head_len` excludes the blank-line
/// terminator, `consumed` includes it (the body offset).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeadEnd {
    pub(crate) head_len: usize,
    pub(crate) consumed: usize,
}

/// Finds the first blank line. `\r\n\r\n` is canonical; a bare `\n\n` is
/// accepted leniently (curl never sends it, hand-typed tests do).
pub(crate) fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let mut i = 0;
    while i < buf.len() {
        if buf.get(i) == Some(&b'\n') {
            let after_crlf = i >= 1 && buf.get(i - 1) == Some(&b'\r');
            // "\r\n\r\n": head ends before the first \r\n.
            if after_crlf && i >= 3 && buf.get(i - 3..i - 1) == Some(b"\r\n") {
                return Some(HeadEnd {
                    head_len: i - 3,
                    consumed: i + 1,
                });
            }
            // "\n\n" (either bare or "\n\r\n" mixed).
            if !after_crlf && i >= 1 && buf.get(i - 1) == Some(&b'\n') {
                return Some(HeadEnd {
                    head_len: i - 1,
                    consumed: i + 1,
                });
            }
            if after_crlf && i >= 2 && buf.get(i - 2) == Some(&b'\n') {
                return Some(HeadEnd {
                    head_len: i - 2,
                    consumed: i + 1,
                });
            }
        }
        i += 1;
    }
    None
}

/// Splits the head into lines on `\n`, trimming one trailing `\r` each.
fn split_head_lines(head: &str) -> impl Iterator<Item = &str> {
    head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l))
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), ParseError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(ParseError::Bad("request line has extra fields"));
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Bad("invalid method"));
    }
    if !path.starts_with('/') || path.len() > 2048 {
        return Err(ParseError::Bad("invalid request target"));
    }
    if path.bytes().any(|b| !(0x21..=0x7e).contains(&b)) {
        return Err(ParseError::Bad("invalid request target"));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Bad("unsupported HTTP version")),
    };
    Ok((method.to_string(), path.to_string(), keep_alive_default))
}

fn content_length(headers: &[(String, String)]) -> Result<u64, ParseError> {
    let mut result: Option<u64> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed: u64 = value
            .parse()
            .map_err(|_| ParseError::Bad("invalid content-length"))?;
        match result {
            Some(prev) if prev != parsed => {
                return Err(ParseError::Bad("conflicting content-length"))
            }
            _ => result = Some(parsed),
        }
    }
    Ok(result.unwrap_or(0))
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(bytes);
        p.poll()
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_body_and_lowercases_names() {
        let req = parse_all(
            b"POST /v1/forecast HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.header("content-type"), Some("application/json"));
    }

    #[test]
    fn incremental_feeding_byte_by_byte_matches_one_shot() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut p = RequestParser::new(ParserLimits::default());
        let mut results = Vec::new();
        for b in raw.iter() {
            p.feed(std::slice::from_ref(b));
            if let Some(req) = p.poll().unwrap() {
                results.push(req);
            }
        }
        assert_eq!(results.len(), 1);
        assert_eq!(results, vec![parse_all(raw).unwrap().unwrap()]);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().path, "/a");
        assert_eq!(p.poll().unwrap().unwrap().path, "/b");
        assert_eq!(p.poll().unwrap(), None);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse_all(b"GET /lf HTTP/1.1\nHost: y\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/lf");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn oversized_head_is_rejected_even_without_terminator() {
        let limits = ParserLimits {
            max_head_bytes: 64,
            ..ParserLimits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"GET / HTTP/1.1\r\n");
        p.feed(&[b'a'; 128]);
        assert_eq!(p.poll(), Err(ParseError::HeadTooLarge));
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
    }

    #[test]
    fn huge_content_length_is_rejected_before_the_body_arrives() {
        let err =
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::BodyTooLarge(999_999_999_999)));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for raw in [
            b"get / HTTP/1.1\r\n\r\n".as_slice(), // lower-case method
            b"GET x HTTP/1.1\r\n\r\n",            // target without '/'
            b"GET / HTTP/2.0\r\n\r\n",            // unknown version
            b"GET / HTTP/1.1 extra\r\n\r\n",      // 4-field request line
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", // obs-fold
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{err} for {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn transfer_encoding_maps_to_501() {
        let err = parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::Unsupported("transfer-encoding"));
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn truncated_body_waits_for_more_input() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
        assert_eq!(p.poll().unwrap(), None);
        assert!(p.buffered() > 0);
        p.feed(b"cde");
        assert_eq!(p.poll().unwrap().unwrap().body, b"abcde");
    }

    #[test]
    fn too_many_headers_is_431() {
        let limits = ParserLimits {
            max_headers: 4,
            ..ParserLimits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..6 {
            raw.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut p = RequestParser::new(limits);
        p.feed(&raw);
        assert_eq!(p.poll(), Err(ParseError::TooManyHeaders));
    }
}
