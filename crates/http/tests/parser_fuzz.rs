//! Property tests for the HTTP request parser: a total function over
//! arbitrary byte soup (never panics, always answers a typed result),
//! and — the property that catches real incremental-parser bugs — feed
//! granularity is unobservable: any split of the same bytes across
//! `feed` calls yields exactly the same requests and the same error.

use pop_http::{ParseError, ParserLimits, Request, RequestParser};
use proptest::prelude::*;

/// Polls until the parser wants more input or fails; errors are terminal
/// for a connection, so draining stops at the first one.
fn drain(p: &mut RequestParser) -> (Vec<Request>, Option<ParseError>) {
    let mut reqs = Vec::new();
    loop {
        match p.poll() {
            Ok(Some(req)) => reqs.push(req),
            Ok(None) => return (reqs, None),
            Err(e) => return (reqs, Some(e)),
        }
    }
}

/// The reference outcome: everything fed at once.
fn one_shot(bytes: &[u8]) -> (Vec<Request>, Option<ParseError>) {
    let mut p = RequestParser::new(ParserLimits::default());
    p.feed(bytes);
    drain(&mut p)
}

/// The outcome when the same bytes arrive split at `cuts` (socket-read
/// boundaries), polling after every fragment like the connection loop.
fn chunked(bytes: &[u8], cuts: &[usize]) -> (Vec<Request>, Option<ParseError>) {
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    cuts.push(bytes.len());
    cuts.sort_unstable();
    let mut p = RequestParser::new(ParserLimits::default());
    let mut reqs = Vec::new();
    let mut prev = 0;
    for cut in cuts {
        p.feed(&bytes[prev..cut]);
        prev = cut;
        let (mut got, err) = drain(&mut p);
        reqs.append(&mut got);
        if let Some(err) = err {
            return (reqs, Some(err));
        }
    }
    (reqs, None)
}

/// One well-formed request with a generated body; `crlf`/`close` vary
/// the line-ending and keep-alive dialects.
fn render_request(i: usize, body_len: usize, crlf: bool, close: bool) -> Vec<u8> {
    let nl = if crlf { "\r\n" } else { "\n" };
    let mut head = format!(
        "POST /v1/models/m{i}/forecast HTTP/1.1{nl}Host: pop{nl}Content-Length: {body_len}{nl}"
    );
    if close {
        head.push_str(&format!("Connection: close{nl}"));
    }
    head.push_str(nl);
    let mut bytes = head.into_bytes();
    bytes.extend((0..body_len).map(|j| b'a' + ((i + j) % 26) as u8));
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics: the parser answers requests, a
    /// typed error, or a wait-for-more — and feeding the soup byte by
    /// byte reaches the identical outcome.
    #[test]
    fn arbitrary_bytes_parse_identically_at_any_granularity(
        bytes in collection::vec(0u8..=255, 96),
        cuts in collection::vec(0usize..97, 5),
    ) {
        let reference = one_shot(&bytes);
        prop_assert_eq!(chunked(&bytes, &cuts), reference.clone());
        // Byte-by-byte is the adversarial extreme of the same property.
        let every_byte: Vec<usize> = (0..bytes.len()).collect();
        prop_assert_eq!(chunked(&bytes, &every_byte), reference);
    }

    /// Pipelined well-formed requests survive arbitrary socket-read
    /// splits — heads and bodies torn anywhere, including mid-CRLF —
    /// with every request recovered intact and in order.
    #[test]
    fn torn_request_streams_reassemble_exactly(
        lens in collection::vec(0usize..40, 3),
        dialects in collection::vec(0u8..4, 3),
        cuts in collection::vec(0usize..512, 6),
    ) {
        let mut stream = Vec::new();
        for (i, (&len, &dialect)) in lens.iter().zip(&dialects).enumerate() {
            // The last request says Connection: close only at the end,
            // so the whole stream stays parseable.
            let close = dialect & 2 != 0 && i == lens.len() - 1;
            stream.extend(render_request(i, len, dialect & 1 != 0, close));
        }
        let (reqs, err) = one_shot(&stream);
        prop_assert_eq!(err, None);
        prop_assert_eq!(reqs.len(), lens.len());
        for (i, (req, &len)) in reqs.iter().zip(&lens).enumerate() {
            prop_assert_eq!(&req.path, &format!("/v1/models/m{i}/forecast"));
            prop_assert_eq!(req.body.len(), len);
        }
        prop_assert_eq!(chunked(&stream, &cuts), (reqs, None));
    }

    /// Hostile fragment soup — split headers, stray terminators, huge
    /// and conflicting lengths, folded continuations, NULs — never
    /// panics, and still parses the same at any feed granularity.
    #[test]
    fn hostile_fragment_soup_is_total(
        picks in collection::vec(0usize..12, 8),
        cuts in collection::vec(0usize..256, 4),
    ) {
        const FRAGMENTS: [&[u8]; 12] = [
            b"GET / HTTP/1.1\r\n",
            b"POST /v1/forecast HTTP/1.1\r\n",
            b"Content-Length: 5\r\n",
            b"Content-Length: 999999999999\r\n",
            b"Content-Length: 2\r\nContent-Length: 3\r\n",
            b"Transfer-Encoding: chunked\r\n",
            b" folded-continuation\r\n",
            b"\r\n",
            b"\n\n",
            b"HTTP/1.1 200 OK\r\n",
            b"\x00\xff garbage \x7f",
            b"X-Header-Without-End",
        ];
        let stream: Vec<u8> = picks
            .iter()
            .flat_map(|&i| FRAGMENTS[i].iter().copied())
            .collect();
        let reference = one_shot(&stream);
        if let (_, Some(err)) = &reference {
            // Whatever went wrong maps onto a concrete client status.
            prop_assert!(matches!(err.status(), 400 | 413 | 431 | 501));
        }
        prop_assert_eq!(chunked(&stream, &cuts), reference);
    }

    /// A Content-Length above the limit is rejected the moment the head
    /// completes — before any body byte is buffered — as 413.
    #[test]
    fn huge_content_length_is_rejected_before_the_body(
        cl in 8_388_609u64..1_000_000_000_000,
    ) {
        let head = format!("POST /v1/forecast HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n");
        let (reqs, err) = one_shot(head.as_bytes());
        prop_assert!(reqs.is_empty());
        prop_assert_eq!(err.clone(), Some(ParseError::BodyTooLarge(cl)));
        prop_assert_eq!(err.map(|e| e.status()), Some(413));
    }

    /// A truncated body is a wait, not an error: the parser reports how
    /// much is pending (the 408 slowloris signal) and completes once the
    /// missing bytes arrive.
    #[test]
    fn truncated_bodies_wait_then_complete(
        body_len in 1usize..64,
        cut in 0usize..64,
    ) {
        let cut = cut % body_len;
        let full = render_request(0, body_len, true, false);
        let (head, body) = full.split_at(full.len() - body_len);
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(head);
        p.feed(&body[..cut]);
        prop_assert_eq!(p.poll(), Ok(None));
        prop_assert!(p.buffered() > 0, "pending bytes must be visible");
        p.feed(&body[cut..]);
        let req = p.poll().unwrap().unwrap();
        prop_assert_eq!(req.body.len(), body_len);
        prop_assert_eq!(p.buffered(), 0);
    }
}
