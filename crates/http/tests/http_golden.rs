//! Golden determinism: a forecast requested over HTTP is **bitwise**
//! identical to the same forecast from an in-process
//! [`pop_serve::ForecastClient`] — for both the f32 engine and the i8
//! quantized sibling. This pins the whole transport stack (JSON float
//! formatting, parsing, request routing) as lossless: `fmt_f32`'s
//! shortest-repr decimals survive the f64 JSON parse exactly.

use pop_core::{ExperimentConfig, Pix2Pix};
use pop_http::{api, ForecastService, HttpClient, HttpServer, ServerConfig};
use pop_nn::Tensor;
use pop_serve::EngineConfig;
use std::time::Duration;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        resolution: 16,
        base_filters: 4,
        depth: 3,
        ..ExperimentConfig::test()
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn http_forecasts_are_bitwise_identical_to_in_process() {
    let service = ForecastService::builder()
        .engine_config(EngineConfig {
            workers: 1,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        })
        .model_with_quantized("base", Pix2Pix::new(&tiny_config(), 21).unwrap())
        .build()
        .unwrap();
    // The in-process seam: grab direct engine clients before the server
    // takes ownership of the service.
    let direct_f32 = service.client("base", false).unwrap();
    let direct_quant = service.client("base", true).unwrap();
    let server = HttpServer::start(service, ServerConfig::default()).unwrap();
    let mut http = HttpClient::connect(server.local_addr()).unwrap();

    let channels = tiny_config().input_channels();
    for seed in [1u64, 2, 3] {
        let x = Tensor::randn([1, channels, 16, 16], 0.0, 0.5, seed);
        for quantized in [false, true] {
            let direct = if quantized {
                &direct_quant
            } else {
                &direct_f32
            };
            let expected = direct.forecast_tensor(&x).unwrap();

            let body = api::render_forecast_request(Some("base"), quantized, x.data());
            let res = http.post_json("/v1/forecast", &body).unwrap();
            assert_eq!(res.status, 200, "{}", res.text());
            let label = if quantized { "base/quant" } else { "base" };
            assert!(
                res.text().contains(&format!("\"model\": \"{label}\"")),
                "response names the engine that answered"
            );
            let got = api::parse_forecast_response(&res.body).unwrap();
            assert_eq!(got.shape(), expected.shape());
            assert_eq!(
                bits(&got),
                bits(&expected),
                "HTTP and in-process forecasts diverge (seed {seed}, quantized {quantized})"
            );
        }
    }

    // The per-scenario endpoint sugar answers from the same engine, so
    // it is pinned to the same bits.
    let x = Tensor::randn([1, channels, 16, 16], 0.0, 0.5, 4);
    let expected = direct_f32.forecast_tensor(&x).unwrap();
    let body = api::render_forecast_request(None, false, x.data());
    let res = http.post_json("/v1/models/base/forecast", &body).unwrap();
    assert_eq!(res.status, 200, "{}", res.text());
    let got = api::parse_forecast_response(&res.body).unwrap();
    assert_eq!(bits(&got), bits(&expected));

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.serve.failed, 0);
}
