//! Fault injection against a live [`HttpServer`]: hostile clients,
//! saturation, and shutdown races. The invariant under every fault is
//! the same — the server answers with HTTP semantics (408/429/503),
//! keeps serving other clients, and drains with **zero** worker panics.

use pop_core::{ExperimentConfig, Pix2Pix};
use pop_http::{api, ForecastService};
use pop_http::{read_response, HttpClient, HttpServer, ServerConfig};
use pop_nn::Tensor;
use pop_serve::EngineConfig;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        resolution: 16,
        base_filters: 4,
        depth: 3,
        ..ExperimentConfig::test()
    }
}

fn features(seed: u64) -> Vec<f32> {
    let cfg = tiny_config();
    Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, seed)
        .data()
        .to_vec()
}

fn service(engine_config: EngineConfig) -> ForecastService {
    ForecastService::builder()
        .engine_config(engine_config)
        .model("base", Pix2Pix::new(&tiny_config(), 7).unwrap())
        .build()
        .unwrap()
}

fn fast_engine() -> EngineConfig {
    EngineConfig {
        workers: 1,
        max_wait: Duration::ZERO,
        ..EngineConfig::default()
    }
}

#[test]
fn client_disconnect_mid_request_leaves_the_server_healthy() {
    let server = HttpServer::start(service(fast_engine()), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A client that sends a full forecast request and hangs up without
    // reading a byte of the (large) response.
    for seed in 0..3 {
        let body = api::render_forecast_request(None, false, &features(seed));
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /v1/forecast HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        drop(stream); // vanish mid-exchange
    }
    // And one that hangs up mid-*request*, body never sent.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/forecast HTTP/1.1\r\nContent-Length: 5000\r\n\r\n{\"fe")
        .unwrap();
    drop(stream);

    // The server still answers a well-behaved client afterwards.
    let mut client = HttpClient::connect(addr).unwrap();
    let res = client.get("/healthz").unwrap();
    assert_eq!(res.status, 200);
    let res = client
        .post_json(
            "/v1/forecast",
            &api::render_forecast_request(None, false, &features(99)),
        )
        .unwrap();
    assert_eq!(res.status, 200, "{}", res.text());

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert!(report.http.connections >= 5);
}

#[test]
fn slowloris_request_hits_the_read_deadline_and_gets_408() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = HttpServer::start(service(fast_engine()), config).unwrap();
    let addr = server.local_addr();

    // Trickle a partial request head and then stall forever.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: slow")
        .unwrap();
    let res = read_response(&mut stream).unwrap();
    assert_eq!(res.status, 408, "stalled mid-head request times out");

    // An *idle* keep-alive connection (no buffered bytes) is closed
    // silently at the same deadline — no 408, just EOF.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(read_response(&mut idle).is_err(), "idle close has no body");

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert!(report.http.timeouts >= 2, "both deadlines were recorded");
}

#[test]
fn engine_saturation_maps_to_429_with_retry_after() {
    // One slow worker, a one-deep queue: any burst overflows.
    let engine = EngineConfig {
        workers: 1,
        max_batch: 1,
        queue_capacity: 1,
        max_wait: Duration::ZERO,
        forward_delay: Duration::from_millis(300),
        ..EngineConfig::default()
    };
    let server = HttpServer::start(service(engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for seed in 0..clients {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let body = api::render_forecast_request(None, false, &features(seed as u64));
            let mut client =
                HttpClient::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
            barrier.wait();
            let res = client.post_json("/v1/forecast", &body).unwrap();
            let retry_after = res.header("retry-after").map(str::to_string);
            (res.status, retry_after)
        }));
    }
    let results: Vec<(u16, Option<String>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let rejected = results.iter().filter(|(s, _)| *s == 429).count();
    assert_eq!(ok + rejected, clients, "saturation yields only 200 or 429");
    assert!(ok >= 1, "someone got through");
    assert!(
        rejected >= 1,
        "a one-deep queue must overflow under a burst"
    );
    for (status, retry_after) in &results {
        if *status == 429 {
            assert_eq!(retry_after.as_deref(), Some("1"));
        }
    }

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.serve.rejected, rejected as u64);
    assert_eq!(report.serve.completed, ok as u64);
}

#[test]
fn connection_backlog_overflow_answers_503_at_the_door() {
    // One worker and a one-deep connection queue: the worker is pinned
    // by the first (silent) connection, the queue holds one more, and
    // every connection after that is turned away with a minimal 503.
    let config = ServerConfig {
        workers: 1,
        conn_backlog: 1,
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let server = HttpServer::start(service(fast_engine()), config).unwrap();
    let addr = server.local_addr();

    let pinned = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // worker adopts it
    let queued = TcpStream::connect(addr).unwrap();
    let mut overflow: Vec<TcpStream> = (0..3)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s
        })
        .collect();

    let mut rejected = 0;
    for stream in &mut overflow {
        if let Ok(res) = read_response(stream) {
            assert_eq!(res.status, 503);
            assert_eq!(res.header("retry-after"), Some("1"));
            rejected += 1;
        }
    }
    assert!(rejected >= 1, "a full backlog must turn connections away");

    drop(pinned);
    drop(queued);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    // `>=`: under scheduler skew the queued connection itself can lose
    // the race and be turned away before we sample it.
    assert!(report.http.accept_rejected >= rejected as u64);
}

#[test]
fn drain_during_inflight_requests_completes_them() {
    let engine = EngineConfig {
        workers: 1,
        max_wait: Duration::ZERO,
        forward_delay: Duration::from_millis(200),
        ..EngineConfig::default()
    };
    let server = HttpServer::start(service(engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let inflight = std::thread::spawn(move || {
        let body = api::render_forecast_request(None, false, &features(5));
        let mut client = HttpClient::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
        client.post_json("/v1/forecast", &body).unwrap()
    });
    // Let the request reach the engine, then pull the plug.
    std::thread::sleep(Duration::from_millis(80));
    let started = Instant::now();
    let report = server.shutdown();

    let res = inflight.join().unwrap();
    assert_eq!(res.status, 200, "in-flight work survives the drain");
    assert_eq!(
        res.header("connection"),
        Some("close"),
        "a draining server closes the connection after answering"
    );
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.serve.completed, 1);
    assert_eq!(report.serve.failed, 0);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain is bounded"
    );
}
