//! Registry distinctness: `dense` and `wide` must generate data that
//! actually differs from `baseline` (and from each other). Historically
//! both rode the test-sized default design scale, where the fabric
//! density and aspect knobs round away on the minimal auto-sized grid —
//! three "different" scenarios silently produced one distribution. The
//! registry now sizes `dense`/`wide` large enough for their knobs to
//! bite; this test pins that with full-pipeline checksums.

use pop_arch::Arch;
use pop_core::dataset::{DesignDataset, Fnv1a};
use pop_pipeline::{generate_corpus_sequential, scenario, ScenarioSpec};

/// One-pair, one-variant slice of a registry scenario: enough to
/// fingerprint the data distribution without sweeping placements.
fn slim(name: &str) -> ScenarioSpec {
    let mut spec = scenario::by_name(name).expect("registry scenario");
    spec.pairs_per_design = 1;
    spec.variants = 1;
    spec
}

/// The fabric the dataset prep would auto-size for a scenario, without
/// running place/route. Grid dimensions depend only on site demand,
/// slack and aspect — never on the channel width — so a fixed probe
/// width reproduces the prep's sizing exactly.
fn fabric_dims(scenario: &ScenarioSpec) -> (usize, usize) {
    let job = &scenario.jobs().expect("valid scenario")[0];
    let netlist = pop_netlist::generate(&job.spec.scaled(job.config.design_scale));
    let (clbs, ios, mems, mults) = netlist.site_demand();
    let arch = Arch::auto_size_with_aspect(
        clbs,
        ios,
        mems,
        mults,
        12,
        job.config.fabric_slack,
        job.config.fabric_aspect,
    )
    .expect("fabric fits");
    (arch.width(), arch.height())
}

fn generate(spec: &ScenarioSpec) -> DesignDataset {
    let mut corpus =
        generate_corpus_sequential(std::slice::from_ref(spec)).expect("scenario generates");
    assert_eq!(corpus.len(), 1);
    corpus.remove(0)
}

/// FNV-1a over the deterministic payload: fabric dims plus every input
/// and target value of every pair.
fn checksum(ds: &DesignDataset) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(ds.grid_width as u64);
    h.eat(ds.grid_height as u64);
    h.eat(ds.channel_width as u64);
    for p in &ds.pairs {
        for v in p.x.data().iter().chain(p.y.data()) {
            h.eat(v.to_bits() as u64);
        }
    }
    h.finish()
}

#[test]
fn dense_and_wide_scenarios_produce_distinct_data() {
    let dense_spec = slim("dense");
    let (baseline, dense, wide) = (
        generate(&slim("baseline")),
        generate(&dense_spec),
        generate(&slim("wide")),
    );

    // The sizing shortcut must agree with what the pipeline actually
    // provisioned, or the control comparison below proves nothing.
    assert_eq!(
        fabric_dims(&dense_spec),
        (dense.grid_width, dense.grid_height)
    );

    // The knob — not just the larger design scale — must change the
    // fabric: a baseline-shaped fabric at dense's own scale is bigger
    // than dense's 95 % target utilization allows.
    let control = fabric_dims(&ScenarioSpec {
        name: "baseline-at-dense-scale".into(),
        design_scale: dense_spec.design_scale,
        ..slim("baseline")
    });
    assert!(
        dense.grid_width * dense.grid_height < control.0 * control.1,
        "dense ({}x{}) must be tighter than the paper-default fabric at \
         the same scale ({}x{})",
        dense.grid_width,
        dense.grid_height,
        control.0,
        control.1,
    );
    // The aspect knob must stretch the interior, not round away.
    assert!(
        wide.grid_width > wide.grid_height,
        "wide fabric ({}x{}) must actually be wider than tall",
        wide.grid_width,
        wide.grid_height,
    );

    // The headline guarantee: three registry scenarios, three data
    // distributions — pairwise-distinct full checksums.
    let sums = [
        ("baseline", checksum(&baseline)),
        ("dense", checksum(&dense)),
        ("wide", checksum(&wide)),
    ];
    for (i, (a, sa)) in sums.iter().enumerate() {
        for (b, sb) in &sums[i + 1..] {
            assert_ne!(sa, sb, "scenarios '{a}' and '{b}' generated identical data");
        }
    }
}
