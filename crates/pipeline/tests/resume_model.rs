//! Kill/resume integration test for the *model-state* half of resumable
//! streaming: an interrupted `train_stream_resumable` run wired through a
//! [`TrainCheckpoint`] must continue from the checkpointed weights and
//! optimiser state (loss continuity), not from fresh initialisation — the
//! PR 3 follow-on bug where only the epoch ring resumed.

use pop_core::Pix2Pix;
use pop_pipeline::{
    scenario, EpochPrefetcher, EpochRing, PipelineOptions, ScenarioSpec, TrainCheckpoint,
};

fn tiny() -> ScenarioSpec {
    ScenarioSpec {
        pairs_per_design: 2,
        ..scenario::by_name("smoke").unwrap()
    }
}

#[test]
fn killed_training_resumes_from_checkpointed_weights_not_fresh() {
    let spec = tiny();
    let config = spec.config();
    let dir = std::env::temp_dir().join("pop_resume_model_test");
    let _ = std::fs::remove_dir_all(&dir);
    let ring = EpochRing::new(dir.join("ring"), 8);
    let mut checkpoint = TrainCheckpoint::new(ring.clone(), dir.join("model.ckpt"));

    // A fresh checkpoint restores nothing.
    assert!(checkpoint.restore(&config).unwrap().is_none());

    // --- Interrupted run: train 3 of 5 epochs, then "crash" (drop the
    // prefetcher mid-stream and forget the model).
    let total_epochs = 5;
    let trained_before_kill = 3;
    let mut model = Pix2Pix::new(&config, 7).unwrap();
    let mut first = EpochPrefetcher::start_with_ring(
        vec![spec.clone()],
        PipelineOptions::with_workers(2),
        total_epochs,
        1,
        ring.clone(),
    );
    let head: Vec<_> = (&mut first)
        .take(trained_before_kill)
        .collect::<Result<_, _>>()
        .unwrap();
    let history_a = model.train_stream_resumable(head, &mut checkpoint);
    assert_eq!(history_a.l1.len(), trained_before_kill);
    // Pin the killed model's behaviour for the restore check below.
    let probe = pop_nn::Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 99);
    let forecast_at_kill = model.forecast(&probe);
    drop(first);
    drop(model); // the "kill": the in-memory model is gone

    // --- Resume: the checkpoint rebuilds the killed model exactly…
    assert_eq!(ring.completed_epochs(), trained_before_kill);
    let mut resumed = checkpoint
        .restore(&config)
        .unwrap()
        .expect("a checkpoint must exist after trained epochs");
    assert_eq!(
        resumed.forecast(&probe),
        forecast_at_kill,
        "restored weights must match the killed model bit for bit"
    );
    assert!(
        resumed.optimizer_steps().0 > 0,
        "optimiser state must resume, not restart"
    );

    // …and training continues over exactly the remaining epochs.
    let rest = EpochPrefetcher::start_with_ring(
        vec![spec.clone()],
        PipelineOptions::with_workers(2),
        total_epochs,
        1,
        ring.clone(),
    );
    assert_eq!(rest.first_epoch(), trained_before_kill);
    let tail: Vec<_> = rest.collect::<Result<_, _>>().unwrap();
    assert_eq!(tail.len(), total_epochs - trained_before_kill);
    let history_b = resumed.train_stream_resumable(tail.clone(), &mut checkpoint);
    assert_eq!(ring.completed_epochs(), total_epochs);

    // --- Loss continuity: the resumed model picks up where the killed run
    // left off. A *fresh* model on the same remaining epochs sits near its
    // initialisation loss; the resumed one must be far below it, and close
    // to the interrupted run's level.
    let mut fresh = Pix2Pix::new(&config, 7).unwrap();
    let history_fresh = fresh.train_stream(tail);
    let resumed_l1 = history_b.l1[0];
    let fresh_l1 = history_fresh.l1[0];
    let killed_l1 = *history_a.l1.last().unwrap();
    assert!(
        resumed_l1 < fresh_l1,
        "resumed first-epoch L1 {resumed_l1} must undercut a fresh model's {fresh_l1}"
    );
    assert!(
        resumed_l1 < killed_l1 * 1.5 + 0.05,
        "resumed L1 {resumed_l1} must continue the killed run's level {killed_l1}, \
         not jump back toward init ({fresh_l1})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
