//! Property test: for arbitrary small scenarios, the parallel pipeline is
//! bitwise-identical to the sequential reference path.

use pop_pipeline::{generate_corpus, generate_corpus_sequential, PipelineOptions, ScenarioSpec};
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        0usize..2,   // design preset choice
        1usize..3,   // pairs per design
        1usize..3,   // netlist variants
        0u64..1000,  // master seed
        0.6f64..1.0, // target utilization
        0.5f64..2.0, // aspect ratio
        1.5f64..4.0, // mean fanout
        0.0f64..1.0, // locality
    )
        .prop_map(
            |(design, pairs, variants, seed, utilization, aspect, fanout, locality)| ScenarioSpec {
                name: format!("prop_{seed}"),
                design: ["diffeq1", "diffeq2"][design].into(),
                design_scale: 0.01,
                resolution: 16,
                pairs_per_design: pairs,
                variants,
                seed,
                target_utilization: utilization,
                aspect_ratio: aspect,
                mean_fanout: fanout,
                locality,
                place_strategy: Default::default(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduling must never leak into the data: any valid scenario
    /// generates the same corpus on 4 workers as sequentially.
    #[test]
    fn parallel_pipeline_matches_sequential(scenario in arb_scenario()) {
        let scenarios = [scenario];
        let sequential = generate_corpus_sequential(&scenarios).unwrap();
        let parallel = generate_corpus(&scenarios, &PipelineOptions::with_workers(4)).unwrap();
        prop_assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            prop_assert_eq!(&p.name, &s.name);
            prop_assert_eq!(p.channel_width, s.channel_width);
            prop_assert_eq!(p.pairs.len(), s.pairs.len());
            for (pp, sp) in p.pairs.iter().zip(&s.pairs) {
                prop_assert_eq!(pp.without_timings(), sp.without_timings());
            }
        }
    }
}
