use pop_core::CoreError;
use std::error::Error;
use std::fmt;

/// Errors of the scenario/data-generation pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// A scenario failed validation (unknown design preset, zero counts,
    /// out-of-range utilization, …).
    BadScenario(String),
    /// A generation stage failed; carries the first failure in job order.
    Core(CoreError),
    /// A worker died (panicked) before delivering its results, so the
    /// named design's dataset is incomplete.
    Incomplete {
        /// The design whose pairs went missing.
        design: String,
    },
    /// The epoch-spill ring or its progress marker could not be written —
    /// the stream would not be resumable, so the failure is surfaced
    /// instead of silently degrading.
    Checkpoint(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BadScenario(msg) => write!(f, "bad scenario: {msg}"),
            PipelineError::Core(e) => write!(f, "generation stage failed: {e}"),
            PipelineError::Incomplete { design } => {
                write!(f, "pipeline lost a worker while generating '{design}'")
            }
            PipelineError::Checkpoint(msg) => {
                write!(f, "epoch checkpoint failed: {msg}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for PipelineError {
    fn from(e: CoreError) -> Self {
        PipelineError::Core(e)
    }
}
