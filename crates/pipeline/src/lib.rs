//! `pop-pipeline` — the streaming, multi-threaded scenario/data-generation
//! pipeline.
//!
//! Dataset generation is the wall-clock bottleneck of every experiment:
//! routing hundreds of placements dominates experiment time. This crate
//! turns the sequential netlist → place → route → raster → tensor loop of
//! `pop_core::dataset` into a staged, streaming generator on the shared
//! `pop-exec` concurrency substrate (the same bounded-queue + worker-pool
//! machinery the serving engine runs on):
//!
//! * [`ScenarioSpec`] — corpora are described *declaratively*: design
//!   preset, scale, resolution, target fabric utilization, aspect ratio,
//!   net-degree profile, seed ranges. The [`scenario::registry`] ships
//!   named scenarios ("smoke", "dense", "wide", "highfanout", …).
//! * [`generate_corpus`] — four stages (fabric prep / place / route /
//!   raster+tensors), each on its own worker pool, connected by bounded
//!   queues; the collector reassembles pairs by `(job, sweep index)`, so
//!   output is **bitwise-identical** to the sequential path
//!   ([`generate_corpus_sequential`]) for identical seeds — both drive the
//!   very same `DesignContext` stage functions.
//! * [`EpochPrefetcher`] — a background iterator generating epoch `N + 1`'s
//!   pairs (fresh placement seeds every epoch) while epoch `N` trains;
//!   plug it into [`Pix2Pix::train_stream`](pop_core::Pix2Pix::train_stream).
//! * **Caching & resume** — [`PipelineOptions::cache_dir`] turns on a
//!   per-job [`CorpusStore`](pop_core::dataset::CorpusStore): warm re-runs
//!   stream straight from disk with **zero** place/route executions
//!   ([`GenStats`] proves it), and [`EpochRing`] +
//!   [`EpochPrefetcher::start_with_ring`] spill generated epochs so an
//!   interrupted `train_stream` run resumes mid-corpus.
//!
//! # Example
//!
//! ```
//! use pop_pipeline::{generate_corpus, scenario, PipelineOptions};
//!
//! let smoke = scenario::by_name("smoke").unwrap();
//! let corpus = generate_corpus(&[smoke], &PipelineOptions::with_workers(2))?;
//! assert_eq!(corpus.len(), 1);
//! assert_eq!(corpus[0].pairs.len(), 2);
//! # Ok::<(), pop_pipeline::PipelineError>(())
//! ```

mod error;
mod prefetch;
mod run;
pub mod scenario;

pub use error::PipelineError;
pub use prefetch::{EpochPrefetcher, EpochRing, TrainCheckpoint};
pub use run::{
    expand, expand_holdout, generate_corpus, generate_corpus_sequential,
    generate_corpus_with_stats, generate_holdout_with_stats, generate_jobs,
    generate_jobs_with_stats, GenStats, PipelineOptions,
};
pub use scenario::{advance_sweep_seeds, DesignJob, ScenarioSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::dataset::DesignDataset;

    fn tiny(name: &str, design: &str, pairs: usize) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            design: design.into(),
            design_scale: 0.01,
            resolution: 16,
            pairs_per_design: pairs,
            ..ScenarioSpec::default()
        }
    }

    /// Asserts both corpora are identical up to wall-clock timing fields;
    /// everything else must be bitwise-equal.
    fn assert_corpora_identical(parallel: &[DesignDataset], sequential: &[DesignDataset]) {
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.channel_width, s.channel_width);
            assert_eq!((p.grid_width, p.grid_height), (s.grid_width, s.grid_height));
            assert_eq!(p.pairs.len(), s.pairs.len());
            for (pp, sp) in p.pairs.iter().zip(&s.pairs) {
                assert_eq!(pp.without_timings(), sp.without_timings());
            }
        }
    }

    #[test]
    fn golden_parallel_output_is_bitwise_identical_to_sequential() {
        // The acceptance gate: a multi-design, multi-scenario corpus
        // generated on 4 workers equals the sequential reference exactly.
        let scenarios = vec![
            tiny("golden-a", "diffeq2", 3),
            ScenarioSpec {
                target_utilization: 0.9,
                aspect_ratio: 2.0,
                ..tiny("golden-b", "diffeq1", 2)
            },
        ];
        let sequential = generate_corpus_sequential(&scenarios).unwrap();
        let parallel = generate_corpus(&scenarios, &PipelineOptions::with_workers(4)).unwrap();
        assert_corpora_identical(&parallel, &sequential);
        // And again: the pipeline itself is deterministic run-to-run.
        let parallel2 = generate_corpus(&scenarios, &PipelineOptions::with_workers(3)).unwrap();
        assert_corpora_identical(&parallel2, &sequential);
    }

    #[test]
    fn variant_scenarios_expand_and_generate() {
        let scenario = ScenarioSpec {
            variants: 2,
            ..tiny("vars", "diffeq2", 2)
        };
        let corpus = generate_corpus(&[scenario], &PipelineOptions::with_workers(2)).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_ne!(corpus[0].name, corpus[1].name);
        // Different netlist seeds must produce different data.
        assert_ne!(corpus[0].pairs[0].x, corpus[1].pairs[0].x);
    }

    #[test]
    fn empty_corpus_and_bad_scenarios() {
        assert!(generate_corpus(&[], &PipelineOptions::default())
            .unwrap()
            .is_empty());
        let bad = ScenarioSpec {
            design: "nosuch".into(),
            ..ScenarioSpec::default()
        };
        assert!(matches!(
            generate_corpus(&[bad], &PipelineOptions::default()),
            Err(PipelineError::BadScenario(_))
        ));
    }

    #[test]
    fn warm_cache_runs_execute_zero_place_route_stages() {
        let dir = std::env::temp_dir().join("pop_pipeline_warm_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![
            tiny("warm-a", "diffeq2", 2),
            ScenarioSpec {
                variants: 2,
                ..tiny("warm-b", "diffeq1", 2)
            },
        ];
        let opts = PipelineOptions::with_workers(3).with_cache_dir(&dir);

        let (cold, cold_stats) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(cold_stats.jobs, 3);
        assert_eq!(cold_stats.cache_hits, 0);
        assert_eq!(cold_stats.place_stage_runs, 6);
        assert_eq!(cold_stats.route_stage_runs, 6);

        let (warm, warm_stats) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(warm_stats.cache_hits, 3, "100% cache hits expected");
        assert_eq!(warm_stats.place_stage_runs, 0, "warm run must not place");
        assert_eq!(warm_stats.route_stage_runs, 0, "warm run must not route");
        // Cached pairs are bitwise-identical to the cold run — including
        // the wall-clock provenance, which regeneration could never
        // reproduce: the strongest possible proof the data came from disk.
        assert_eq!(cold, warm);

        // And identical to a cache-less sequential reference, timings
        // aside (the end-to-end integrity claim).
        let reference = generate_corpus_sequential(&scenarios).unwrap();
        assert_corpora_identical(&warm, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_cache_entries_self_heal() {
        let dir = std::env::temp_dir().join("pop_pipeline_poisoned_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![tiny("heal-a", "diffeq2", 2), tiny("heal-b", "diffeq1", 2)];
        let opts = PipelineOptions::with_workers(2).with_cache_dir(&dir);
        let (cold, _) = generate_corpus_with_stats(&scenarios, &opts).unwrap();

        // Truncate one entry mid-file (the classic crash-mid-write relic).
        let poisoned = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("diffeq2")
            })
            .expect("diffeq2 cache entry");
        let bytes = std::fs::read(&poisoned).unwrap();
        std::fs::write(&poisoned, &bytes[..bytes.len() / 2]).unwrap();

        let (healed, stats) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(stats.cache_hits, 1, "intact entry still hits");
        assert_eq!(stats.place_stage_runs, 2, "only the damaged job re-runs");
        assert_corpora_identical(&healed, &cold);
        // The regenerated entry replaced the damaged one: fully warm again.
        let (_, stats2) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(stats2.cache_hits, 2);
        assert_eq!(stats2.place_stage_runs, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_place_strategy_flows_through_the_pipeline() {
        use pop_place::PlaceStrategy;
        let scenario = |threads| ScenarioSpec {
            place_strategy: PlaceStrategy::ParallelRegions {
                regions: 2,
                threads,
            },
            ..tiny("parstrat", "diffeq2", 2)
        };
        // The data is thread-count invariant (the parallel annealer's
        // determinism contract, observed end-to-end through the pipeline)…
        let four = generate_corpus(&[scenario(4)], &PipelineOptions::with_workers(2)).unwrap();
        let one = generate_corpus(&[scenario(1)], &PipelineOptions::with_workers(2)).unwrap();
        assert_corpora_identical(&four, &one);
        // …and matches the sequential *driver* running the same strategy
        // (on a design this tiny both annealers even find the same
        // optimum; the placement-family fingerprint split is pinned by
        // pop-core's cache tests on realistic sizes).
        let reference = generate_corpus_sequential(&[scenario(4)]).unwrap();
        assert_corpora_identical(&four, &reference);
    }

    #[test]
    fn cache_budget_sweeps_the_store_during_generation() {
        let dir = std::env::temp_dir().join("pop_pipeline_cache_budget_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![
            tiny("budget-a", "diffeq2", 1),
            tiny("budget-b", "diffeq1", 1),
            ScenarioSpec {
                seed: 9,
                ..tiny("budget-c", "diffeq2", 1)
            },
        ];
        // A 1-byte budget keeps only each write's own entry: the store
        // ends the run with exactly one (the last-completed) job cached.
        let opts = PipelineOptions::with_workers(2)
            .with_cache_dir(&dir)
            .with_cache_budget(1);
        let (_, stats) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(stats.cache_hits, 0);
        let entries = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("popds")
            })
            .count();
        assert_eq!(entries, 1, "budget sweep must keep only the newest entry");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipeline_waits_on_a_foreign_claim_then_streams_the_foreign_result() {
        use pop_core::dataset::{build_design_dataset, ClaimOutcome, CorpusStore};
        let dir = std::env::temp_dir().join("pop_pipeline_claim_wait_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = tiny("claimed", "diffeq2", 2);
        let job = expand(std::slice::from_ref(&scenario)).unwrap().remove(0);
        let store = CorpusStore::new(&dir);

        // A "foreign process" claims the job before our pipeline starts.
        let foreign_claim = match store.begin(&job.spec, &job.config).unwrap() {
            ClaimOutcome::Claimed(guard) => guard,
            other => panic!("expected a fresh claim, got {other:?}"),
        };

        // Our pipeline must block in the prep stage instead of duplicating
        // the foreign process's place/route work.
        let pipeline = {
            let scenario = scenario.clone();
            let opts = PipelineOptions::with_workers(2).with_cache_dir(&dir);
            std::thread::spawn(move || {
                generate_corpus_with_stats(std::slice::from_ref(&scenario), &opts).unwrap()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(!pipeline.is_finished(), "pipeline must wait on the claim");

        // The foreign process finishes: stores the entry, releases.
        let ds = build_design_dataset(&job.spec, &job.config).unwrap();
        store.store(&ds, &job.spec, &job.config).unwrap();
        drop(foreign_claim);

        let (corpus, stats) = pipeline.join().unwrap();
        assert_eq!(stats.cache_hits, 1, "served from the foreign result");
        assert_eq!(stats.place_stage_runs, 0, "no duplicated placement work");
        assert_eq!(stats.route_stage_runs, 0, "no duplicated routing work");
        assert_eq!(corpus[0], ds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn holdout_split_is_disjoint_from_every_training_epoch() {
        // Seed-level assertion of the hold-out contract: no placement seed
        // the streaming trainer ever saw (any epoch) appears in the eval
        // split.
        let scenario = tiny("holdout-disjoint", "diffeq2", 2);
        let train_epochs = 2;
        let epochs = EpochPrefetcher::start(
            vec![scenario.clone()],
            PipelineOptions::with_workers(2),
            train_epochs,
            1,
        )
        .collect_epochs()
        .unwrap();
        let train_seeds: Vec<u64> = epochs.iter().flatten().map(|p| p.meta.place_seed).collect();
        assert_eq!(train_seeds.len(), 4, "2 epochs x 2 pairs");

        let (eval, _) = generate_holdout_with_stats(
            std::slice::from_ref(&scenario),
            3,
            train_epochs,
            &PipelineOptions::with_workers(2),
        )
        .unwrap();
        assert_eq!(eval.len(), 1);
        assert_eq!(eval[0].pairs.len(), 3, "eval split sizes independently");
        for p in &eval[0].pairs {
            assert!(
                !train_seeds.contains(&p.meta.place_seed),
                "eval placement seed {} was used for training",
                p.meta.place_seed
            );
        }
    }

    #[test]
    fn holdout_split_warm_cache_regenerates_nothing() {
        let dir = std::env::temp_dir().join("pop_pipeline_holdout_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![
            tiny("holdout-warm-a", "diffeq2", 2),
            tiny("holdout-warm-b", "diffeq1", 2),
        ];
        let opts = PipelineOptions::with_workers(2).with_cache_dir(&dir);

        // Training epoch 0 shares the store: its entries must coexist with
        // the eval split's (distinct fingerprints), never satisfy it.
        let (_, train_stats) = generate_corpus_with_stats(&scenarios, &opts).unwrap();
        assert_eq!(train_stats.cache_hits, 0);

        let (cold, cold_stats) = generate_holdout_with_stats(&scenarios, 2, 3, &opts).unwrap();
        assert_eq!(
            cold_stats.cache_hits, 0,
            "the eval split must not be served from training entries"
        );
        assert_eq!(cold_stats.place_stage_runs, 4);

        let (warm, warm_stats) = generate_holdout_with_stats(&scenarios, 2, 3, &opts).unwrap();
        assert_eq!(warm_stats.cache_hits, 2, "100% hits on the warm re-run");
        assert_eq!(warm_stats.place_stage_runs, 0, "zero pairs regenerated");
        assert_eq!(warm_stats.route_stage_runs, 0);
        // Bitwise-identical datasets, wall-clock provenance included — the
        // proof the eval data streamed from disk.
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_failures_surface_as_core_errors() {
        // A job doctored with an invalid config fails in the prep stage
        // and must surface as the original core error, not hang.
        let mut jobs = expand(&[tiny("bad-config", "diffeq2", 2)]).unwrap();
        jobs[0].config.resolution = 48; // not a power of two
        assert!(matches!(
            generate_jobs(jobs, &PipelineOptions::with_workers(2)),
            Err(PipelineError::Core(_))
        ));
    }

    #[test]
    fn options_default_to_available_parallelism() {
        let opts = PipelineOptions::default();
        assert!(opts.workers >= 1);
        assert!(opts.queue_depth >= 2);
        let four = PipelineOptions::with_workers(4);
        assert_eq!(four.workers, 4);
        assert_eq!(four.queue_depth, 8);
    }
}
