//! Background epoch prefetch: generate epoch `N + 1`'s pairs while epoch
//! `N` trains.
//!
//! [`EpochPrefetcher`] runs the parallel corpus generator on a background
//! thread and yields one `Vec<Pair>` per epoch through a bounded channel
//! (depth = how many epochs may be pre-generated ahead of the trainer).
//! Each epoch shifts every scenario's placement-sweep seed past the
//! previous epoch's range, so the trainer sees *fresh placements of the
//! same designs* every epoch — the corpus-diversity knob the fixed-preset
//! flow never had. Feed it straight into
//! [`Pix2Pix::train_stream`](pop_core::Pix2Pix::train_stream).

use crate::error::PipelineError;
use crate::run::{expand, generate_jobs, PipelineOptions};
use crate::scenario::{DesignJob, ScenarioSpec};
use pop_core::dataset::Pair;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// A background iterator of per-epoch training pairs.
///
/// Dropping the prefetcher early (e.g. the trainer stopped) disconnects
/// the channel; the generator thread notices on its next send and exits.
#[derive(Debug)]
pub struct EpochPrefetcher {
    rx: Option<mpsc::Receiver<Result<Vec<Pair>, PipelineError>>>,
    producer: Option<JoinHandle<()>>,
}

impl EpochPrefetcher {
    /// Starts generating `epochs` corpora from `scenarios` in the
    /// background, keeping at most `depth` finished epochs buffered.
    /// Epoch `e` uses sweep seeds shifted by `e * pairs_per_design`, so
    /// consecutive epochs draw disjoint placement seeds.
    pub fn start(
        scenarios: Vec<ScenarioSpec>,
        opts: PipelineOptions,
        epochs: usize,
        depth: usize,
    ) -> Self {
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        let producer = std::thread::Builder::new()
            .name("pop-pipe-prefetch".into())
            .spawn(move || {
                for epoch in 0..epochs {
                    let result = shifted_jobs(&scenarios, epoch)
                        .and_then(|jobs| generate_jobs(jobs, &opts))
                        .map(|datasets| {
                            datasets
                                .into_iter()
                                .flat_map(|d| d.pairs)
                                .collect::<Vec<Pair>>()
                        });
                    let failed = result.is_err();
                    if tx.send(result).is_err() {
                        return; // consumer hung up — stop generating
                    }
                    if failed {
                        return; // error delivered; nothing sensible follows
                    }
                }
            })
            .expect("failed to spawn prefetch thread");
        EpochPrefetcher {
            rx: Some(rx),
            producer: Some(producer),
        }
    }

    /// Convenience consumer: unwraps errors into the first failure and
    /// collects the remaining epochs eagerly (mostly for tests; training
    /// should iterate lazily to overlap generation with optimisation).
    ///
    /// # Errors
    ///
    /// Returns the first generation failure.
    pub fn collect_epochs(self) -> Result<Vec<Vec<Pair>>, PipelineError> {
        self.collect()
    }
}

/// Expands scenarios into jobs whose *placement-sweep* seeds are advanced
/// past every earlier epoch. Only `config.seed` shifts — the netlist
/// variant derivation (the scenario seed) stays fixed, so every epoch
/// re-places the *same* designs rather than inventing new ones.
fn shifted_jobs(scenarios: &[ScenarioSpec], epoch: usize) -> Result<Vec<DesignJob>, PipelineError> {
    let mut jobs = expand(scenarios)?;
    for job in &mut jobs {
        job.config.seed = job
            .config
            .seed
            .wrapping_add(epoch as u64 * job.config.pairs_per_design as u64);
    }
    Ok(jobs)
}

impl Iterator for EpochPrefetcher {
    type Item = Result<Vec<Pair>, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for EpochPrefetcher {
    fn drop(&mut self) {
        // Disconnect first so a blocked producer send unblocks, then join.
        self.rx = None;
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::by_name;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec {
            pairs_per_design: 2,
            ..by_name("smoke").unwrap()
        }
    }

    #[test]
    fn epochs_arrive_in_order_with_fresh_placements() {
        let prefetcher =
            EpochPrefetcher::start(vec![tiny()], PipelineOptions::with_workers(2), 2, 1);
        let epochs = prefetcher.collect_epochs().unwrap();
        assert_eq!(epochs.len(), 2);
        for pairs in &epochs {
            assert_eq!(pairs.len(), 2);
        }
        // Epoch 1 must not reuse epoch 0's placement seeds.
        let seeds0: Vec<u64> = epochs[0].iter().map(|p| p.meta.place_seed).collect();
        let seeds1: Vec<u64> = epochs[1].iter().map(|p| p.meta.place_seed).collect();
        assert!(
            seeds0.iter().all(|s| !seeds1.contains(s)),
            "{seeds0:?} vs {seeds1:?}"
        );
        // And each epoch matches a sequential build of the shifted jobs.
        let direct_pairs: Vec<_> = shifted_jobs(&[tiny()], 1)
            .unwrap()
            .iter()
            .flat_map(|job| {
                pop_core::dataset::build_design_dataset(&job.spec, &job.config)
                    .unwrap()
                    .pairs
            })
            .collect();
        for (a, b) in epochs[1].iter().zip(&direct_pairs) {
            assert_eq!(a.without_timings(), b.without_timings());
        }
    }

    #[test]
    fn epoch_shift_replaces_placements_not_designs() {
        // Multi-variant scenarios must re-place the *same* netlists each
        // epoch: the shift may only touch the placement-sweep seed.
        let scenario = ScenarioSpec {
            variants: 3,
            ..tiny()
        };
        let epoch0 = shifted_jobs(std::slice::from_ref(&scenario), 0).unwrap();
        let epoch1 = shifted_jobs(std::slice::from_ref(&scenario), 1).unwrap();
        for (a, b) in epoch0.iter().zip(&epoch1) {
            assert_eq!(
                a.spec, b.spec,
                "netlist variants must be stable across epochs"
            );
            assert_ne!(a.config.seed, b.config.seed, "sweep seeds must advance");
        }
    }

    #[test]
    fn early_drop_stops_the_producer() {
        let mut prefetcher =
            EpochPrefetcher::start(vec![tiny()], PipelineOptions::with_workers(2), 50, 1);
        let first = prefetcher.next().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        // Dropping after one epoch must not hang on the remaining 49.
        drop(prefetcher);
    }

    #[test]
    fn generation_failure_is_yielded_then_ends_the_stream() {
        let bad = ScenarioSpec {
            design: "nosuch".into(),
            ..tiny()
        };
        let mut prefetcher =
            EpochPrefetcher::start(vec![bad], PipelineOptions::with_workers(1), 3, 1);
        assert!(matches!(
            prefetcher.next(),
            Some(Err(PipelineError::BadScenario(_)))
        ));
        assert!(prefetcher.next().is_none());
    }
}
