//! Background epoch prefetch: generate epoch `N + 1`'s pairs while epoch
//! `N` trains — now with an optional **spill-to-disk ring** that makes an
//! interrupted streaming run resumable.
//!
//! [`EpochPrefetcher`] runs the parallel corpus generator on a background
//! thread and yields one `Vec<Pair>` per epoch through a bounded channel
//! (depth = how many epochs may be pre-generated ahead of the trainer).
//! Each epoch shifts every scenario's placement-sweep seed past the
//! previous epoch's range, so the trainer sees *fresh placements of the
//! same designs* every epoch — the corpus-diversity knob the fixed-preset
//! flow never had. Feed it straight into
//! [`Pix2Pix::train_stream`](pop_core::Pix2Pix::train_stream).
//!
//! With an [`EpochRing`] attached ([`EpochPrefetcher::start_with_ring`]),
//! every generated epoch is spilled to disk (atomically, keyed by a
//! fingerprint of the shifted jobs) before it is handed to the trainer,
//! and the trainer acknowledges trained epochs back into the ring through
//! the [`StreamCheckpoint`] handshake
//! ([`Pix2Pix::train_stream_resumable`](pop_core::Pix2Pix::train_stream_resumable)).
//! A killed run therefore resumes *mid-corpus*: already-trained epochs are
//! skipped outright, already-generated-but-untrained epochs stream back
//! from the spill files, and only genuinely new epochs pay for place +
//! route again.

use crate::error::PipelineError;
use crate::run::{expand, generate_jobs_with_stats, GenStats, PipelineOptions};
use crate::scenario::{DesignJob, ScenarioSpec};
use pop_core::dataset::{atomic_write, fingerprint, read_pair, write_pair, Fnv1a, Pair};
use pop_core::{model_io, CoreError, ExperimentConfig, Pix2Pix, StreamCheckpoint};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

const RING_MAGIC: &[u8; 8] = b"POPRING1";
/// Decode-time bound mirroring the dataset cache's: a corrupt epoch header
/// must not drive a huge allocation.
const MAX_RING_PAIRS: usize = 1 << 20;

/// A bounded on-disk ring of generated epochs plus a training-progress
/// marker — the persistence half of resumable streaming.
///
/// Layout under `dir`:
///
/// * `epoch-<e>.pope` — the spilled pairs of epoch `e`, keyed by a
///   fingerprint of the epoch's (seed-shifted) generation jobs; at most
///   `capacity` of these are kept (oldest pruned first);
/// * `progress` — how many epochs the *trainer* has fully consumed,
///   advanced through the [`StreamCheckpoint`] handshake.
///
/// All writes are atomic (tmp + rename) and all reads treat damage as a
/// miss, exactly like the dataset cache: a truncated spill file costs a
/// regeneration, never a wedged stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRing {
    dir: PathBuf,
    capacity: usize,
}

impl EpochRing {
    /// A ring rooted at `dir` keeping at most `capacity` spilled epochs
    /// (minimum 1). The directory is created lazily on first write.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> Self {
        EpochRing {
            dir: dir.into(),
            capacity: capacity.max(1),
        }
    }

    /// The ring's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn epoch_path(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("epoch-{epoch:06}.pope"))
    }

    fn progress_path(&self) -> PathBuf {
        self.dir.join("progress")
    }

    /// How many epochs a previous run fully *trained* (0 for a fresh or
    /// damaged ring).
    pub fn completed_epochs(&self) -> usize {
        std::fs::read_to_string(self.progress_path())
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    }

    /// Records that training on `epoch` finished (progress becomes
    /// `epoch + 1`) and prunes spill files the resumed stream can never
    /// need again.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the progress marker.
    pub fn mark_completed(&self, epoch: usize) -> std::io::Result<()> {
        atomic_write(&self.progress_path(), |w| writeln!(w, "{}", epoch + 1))?;
        self.prune(epoch + 1);
        Ok(())
    }

    /// Loads a spilled epoch; `None` on a miss (absent, truncated, corrupt
    /// or generated under a different scenario key — all of which mean
    /// "regenerate").
    pub fn load_epoch(&self, key: u64, epoch: usize) -> Option<Vec<Pair>> {
        let mut r = std::io::BufReader::new(std::fs::File::open(self.epoch_path(epoch)).ok()?);
        parse_epoch(&mut r, key, epoch).ok().flatten()
    }

    /// Atomically spills one epoch's pairs, then prunes the ring down to
    /// its capacity (and below the training-progress watermark).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn store_epoch(&self, key: u64, epoch: usize, pairs: &[Pair]) -> std::io::Result<()> {
        // Mirror the reader's bound at write time so an oversized epoch
        // fails loudly instead of becoming a spill the reader forever
        // rejects as corrupt.
        if pairs.len() > MAX_RING_PAIRS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("epoch exceeds {MAX_RING_PAIRS} pairs"),
            ));
        }
        atomic_write(&self.epoch_path(epoch), |w| {
            w.write_all(RING_MAGIC)?;
            w.write_all(&key.to_le_bytes())?;
            w.write_all(&(epoch as u64).to_le_bytes())?;
            w.write_all(&(pairs.len() as u32).to_le_bytes())?;
            for p in pairs {
                write_pair(w, p)?;
            }
            Ok(())
        })?;
        self.prune(
            self.completed_epochs()
                .max((epoch + 1).saturating_sub(self.capacity)),
        );
        Ok(())
    }

    /// Removes spill files for epochs below `watermark` (best-effort).
    fn prune(&self, watermark: usize) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(idx) = name
                .to_str()
                .and_then(|n| n.strip_prefix("epoch-"))
                .and_then(|n| n.strip_suffix(".pope"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            if idx < watermark {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

fn parse_epoch(r: &mut impl Read, key: u64, epoch: usize) -> std::io::Result<Option<Vec<Pair>>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != RING_MAGIC {
        return Ok(None);
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    if u64::from_le_bytes(b8) != key {
        return Ok(None);
    }
    r.read_exact(&mut b8)?;
    if u64::from_le_bytes(b8) != epoch as u64 {
        return Ok(None);
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4) as usize;
    if n > MAX_RING_PAIRS {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "corrupt epoch spill: pair count",
        ));
    }
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(read_pair(r)?);
    }
    Ok(Some(pairs))
}

/// The trainer-side half of the resume handshake: `train_stream_resumable`
/// starts counting at [`EpochRing::completed_epochs`] and advances the
/// ring's progress marker only *after* each epoch actually trained.
impl StreamCheckpoint for EpochRing {
    fn completed_epochs(&self) -> usize {
        EpochRing::completed_epochs(self)
    }

    fn epoch_completed(&mut self, epoch: usize, _model: &mut Pix2Pix) {
        // Data-only resume: the ring tracks the corpus position, not the
        // weights (wrap it in a [`TrainCheckpoint`] to persist both). A
        // failed marker write only costs a re-train of this epoch on the
        // next resume — never wedges the current run.
        let _ = self.mark_completed(epoch);
    }
}

/// An [`EpochRing`] plus a model-checkpoint path: the *complete* resume
/// handshake. The bare ring resumes the **data** stream but a resumed
/// trainer would still start from fresh weights — the PR 3 follow-on bug.
/// `TrainCheckpoint` closes it: each epoch acknowledgement first persists
/// the full training state ([`model_io::save_checkpoint`] — weights,
/// Adam moments/steps, trainer RNG position) and only then advances the
/// ring's progress marker, so the weights on disk can never run ahead of
/// the corpus position. On resume, [`TrainCheckpoint::restore`] rebuilds
/// the model the interrupted run was training.
///
/// Ordering contract: weights before marker. A crash between the two
/// costs one re-trained epoch (from the saved weights) — it can never
/// silently skip an epoch or resume from re-initialised weights.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    ring: EpochRing,
    model_path: PathBuf,
}

impl TrainCheckpoint {
    /// Couples `ring` with a model checkpoint at `model_path`.
    pub fn new(ring: EpochRing, model_path: impl Into<PathBuf>) -> Self {
        TrainCheckpoint {
            ring,
            model_path: model_path.into(),
        }
    }

    /// The underlying epoch ring.
    pub fn ring(&self) -> &EpochRing {
        &self.ring
    }

    /// Where the model checkpoint lives.
    pub fn model_path(&self) -> &Path {
        &self.model_path
    }

    /// Rebuilds the interrupted run's model: `Ok(Some)` when the ring has
    /// trained epochs *and* a checkpoint exists, `Ok(None)` for a fresh
    /// (or model-less, data-only) ring — the caller should then start a
    /// fresh model **and** reset the ring so data and weights restart
    /// together.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] when an existing checkpoint cannot be
    /// loaded (corrupt, or trained with a different architecture).
    pub fn restore(&self, config: &ExperimentConfig) -> Result<Option<Pix2Pix>, CoreError> {
        if self.ring.completed_epochs() == 0 || !self.model_path.exists() {
            return Ok(None);
        }
        model_io::load_checkpoint(config, &self.model_path).map(Some)
    }
}

impl StreamCheckpoint for TrainCheckpoint {
    fn completed_epochs(&self) -> usize {
        self.ring.completed_epochs()
    }

    fn epoch_completed(&mut self, epoch: usize, model: &mut Pix2Pix) {
        // Weights FIRST, then the progress marker (see the type docs). A
        // failed save skips the marker too: the epoch re-trains on resume
        // from the previous consistent (weights, progress) pair.
        match model_io::save_checkpoint(model, &self.model_path) {
            Ok(()) => {
                let _ = self.ring.mark_completed(epoch);
            }
            Err(e) => eprintln!(
                "pop-pipeline: model checkpoint failed \
                 (epoch {epoch} will re-train on resume): {e}"
            ),
        }
    }
}

/// The key a spilled epoch is stored under: folds every job fingerprint of
/// the (seed-shifted) epoch expansion together, so *any* scenario-parameter
/// change — or the epoch's own seed shift — invalidates the spill.
fn epoch_key(jobs: &[DesignJob]) -> u64 {
    let mut h = Fnv1a::new();
    for job in jobs {
        h.eat(fingerprint(&job.spec, &job.config));
    }
    h.finish()
}

/// A background iterator of per-epoch training pairs.
///
/// Dropping the prefetcher early (e.g. the trainer stopped) disconnects
/// the channel; the generator thread notices on its next send and exits.
#[derive(Debug)]
pub struct EpochPrefetcher {
    rx: Option<mpsc::Receiver<Result<Vec<Pair>, PipelineError>>>,
    producer: Option<JoinHandle<()>>,
    first_epoch: usize,
}

impl EpochPrefetcher {
    /// Starts generating `epochs` corpora from `scenarios` in the
    /// background, keeping at most `depth` finished epochs buffered.
    /// Epoch `e` uses sweep seeds shifted by `e * pairs_per_design`, so
    /// consecutive epochs draw disjoint placement seeds.
    pub fn start(
        scenarios: Vec<ScenarioSpec>,
        opts: PipelineOptions,
        epochs: usize,
        depth: usize,
    ) -> Self {
        Self::start_inner(scenarios, opts, epochs, depth, None, None)
    }

    /// [`EpochPrefetcher::start`] with a shared [`GenStats`] sink: every
    /// epoch's generation counters (jobs, cache hits, actual place/route
    /// stage executions) are folded into `stats` as the epoch completes.
    /// This is how a consumer of the *streaming* training path (e.g. the
    /// eval harness) can still prove the cache contract — a warm re-run
    /// reports 100 % hits and zero stage runs across every epoch.
    pub fn start_observed(
        scenarios: Vec<ScenarioSpec>,
        opts: PipelineOptions,
        epochs: usize,
        depth: usize,
        stats: Arc<Mutex<GenStats>>,
    ) -> Self {
        Self::start_inner(scenarios, opts, epochs, depth, None, Some(stats))
    }

    /// [`EpochPrefetcher::start`] with a spill-to-disk [`EpochRing`]: every
    /// generated epoch is persisted before it is yielded, and epochs the
    /// ring marks as already trained are skipped entirely — this is the
    /// resume path. Combined with
    /// [`Pix2Pix::train_stream_resumable`](pop_core::Pix2Pix::train_stream_resumable)
    /// (pass the same ring as the checkpoint), an interrupted `train_stream`
    /// run picks up at the first untrained epoch, streaming any
    /// already-spilled epochs straight from disk instead of regenerating
    /// from seeds.
    pub fn start_with_ring(
        scenarios: Vec<ScenarioSpec>,
        opts: PipelineOptions,
        epochs: usize,
        depth: usize,
        ring: EpochRing,
    ) -> Self {
        Self::start_inner(scenarios, opts, epochs, depth, Some(ring), None)
    }

    fn start_inner(
        scenarios: Vec<ScenarioSpec>,
        opts: PipelineOptions,
        epochs: usize,
        depth: usize,
        ring: Option<EpochRing>,
        stats: Option<Arc<Mutex<GenStats>>>,
    ) -> Self {
        let first_epoch = ring
            .as_ref()
            .map_or(0, EpochRing::completed_epochs)
            .min(epochs);
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        let producer = std::thread::Builder::new()
            .name("pop-pipe-prefetch".into())
            .spawn(move || {
                for epoch in first_epoch..epochs {
                    let result =
                        epoch_pairs(&scenarios, epoch, &opts, ring.as_ref(), stats.as_ref());
                    let failed = result.is_err();
                    if tx.send(result).is_err() {
                        return; // consumer hung up — stop generating
                    }
                    if failed {
                        return; // error delivered; nothing sensible follows
                    }
                }
            })
            .expect("failed to spawn prefetch thread");
        EpochPrefetcher {
            rx: Some(rx),
            producer: Some(producer),
            first_epoch,
        }
    }

    /// The index of the first epoch this prefetcher will yield: 0 for a
    /// fresh stream, the interrupted run's trained-epoch count when
    /// resuming from a ring.
    pub fn first_epoch(&self) -> usize {
        self.first_epoch
    }

    /// Convenience consumer: unwraps errors into the first failure and
    /// collects the remaining epochs eagerly (mostly for tests; training
    /// should iterate lazily to overlap generation with optimisation).
    ///
    /// # Errors
    ///
    /// Returns the first generation failure.
    pub fn collect_epochs(self) -> Result<Vec<Vec<Pair>>, PipelineError> {
        self.collect()
    }
}

/// Materialises one epoch: spill-ring hit if available, else a full
/// pipeline generation (spilled back to the ring before it is yielded, so
/// a consumer crash after this point costs no regeneration).
fn epoch_pairs(
    scenarios: &[ScenarioSpec],
    epoch: usize,
    opts: &PipelineOptions,
    ring: Option<&EpochRing>,
    stats: Option<&Arc<Mutex<GenStats>>>,
) -> Result<Vec<Pair>, PipelineError> {
    let jobs = shifted_jobs(scenarios, epoch)?;
    let key = epoch_key(&jobs);
    if let Some(ring) = ring {
        if let Some(pairs) = ring.load_epoch(key, epoch) {
            return Ok(pairs);
        }
    }
    let (datasets, gen) = generate_jobs_with_stats(jobs, opts)?;
    if let Some(stats) = stats {
        stats.lock().expect("prefetch stats lock").absorb(gen);
    }
    let pairs: Vec<Pair> = datasets.into_iter().flat_map(|d| d.pairs).collect();
    if let Some(ring) = ring {
        ring.store_epoch(key, epoch, &pairs)
            .map_err(|e| PipelineError::Checkpoint(format!("spill epoch {epoch}: {e}")))?;
    }
    Ok(pairs)
}

/// Expands scenarios into jobs whose *placement-sweep* seeds are advanced
/// past every earlier epoch (via
/// [`advance_sweep_seeds`](crate::scenario::advance_sweep_seeds) — the
/// same arithmetic the hold-out split shifts by, which is what makes eval
/// seeds provably disjoint from every training epoch). Only `config.seed`
/// shifts — the netlist variant derivation (the scenario seed) stays
/// fixed, so every epoch re-places the *same* designs rather than
/// inventing new ones.
fn shifted_jobs(scenarios: &[ScenarioSpec], epoch: usize) -> Result<Vec<DesignJob>, PipelineError> {
    let mut jobs = expand(scenarios)?;
    crate::scenario::advance_sweep_seeds(&mut jobs, epoch);
    Ok(jobs)
}

impl Iterator for EpochPrefetcher {
    type Item = Result<Vec<Pair>, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for EpochPrefetcher {
    fn drop(&mut self) {
        // Disconnect first so a blocked producer send unblocks, then join.
        self.rx = None;
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::by_name;
    use pop_core::dataset::PairMeta;
    use pop_nn::Tensor;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec {
            pairs_per_design: 2,
            ..by_name("smoke").unwrap()
        }
    }

    fn tmp_ring(tag: &str, capacity: usize) -> EpochRing {
        let dir = std::env::temp_dir().join(format!("pop_ring_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        EpochRing::new(dir, capacity)
    }

    /// A throwaway model for exercising the ring's (model-agnostic)
    /// StreamCheckpoint impl directly.
    fn scratch_model() -> Pix2Pix {
        let config = pop_core::ExperimentConfig {
            resolution: 16,
            base_filters: 2,
            depth: 2,
            ..pop_core::ExperimentConfig::test()
        };
        Pix2Pix::new(&config, 1).unwrap()
    }

    fn synthetic_pairs(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| Pair {
                x: Tensor::randn([1, 2, 4, 4], 0.0, 1.0, i as u64),
                y: Tensor::randn([1, 3, 4, 4], 0.0, 1.0, (i + 100) as u64),
                meta: PairMeta::synthetic(i as u64),
            })
            .collect()
    }

    #[test]
    fn epochs_arrive_in_order_with_fresh_placements() {
        let prefetcher =
            EpochPrefetcher::start(vec![tiny()], PipelineOptions::with_workers(2), 2, 1);
        let epochs = prefetcher.collect_epochs().unwrap();
        assert_eq!(epochs.len(), 2);
        for pairs in &epochs {
            assert_eq!(pairs.len(), 2);
        }
        // Epoch 1 must not reuse epoch 0's placement seeds.
        let seeds0: Vec<u64> = epochs[0].iter().map(|p| p.meta.place_seed).collect();
        let seeds1: Vec<u64> = epochs[1].iter().map(|p| p.meta.place_seed).collect();
        assert!(
            seeds0.iter().all(|s| !seeds1.contains(s)),
            "{seeds0:?} vs {seeds1:?}"
        );
        // And each epoch matches a sequential build of the shifted jobs.
        let direct_pairs: Vec<_> = shifted_jobs(&[tiny()], 1)
            .unwrap()
            .iter()
            .flat_map(|job| {
                pop_core::dataset::build_design_dataset(&job.spec, &job.config)
                    .unwrap()
                    .pairs
            })
            .collect();
        for (a, b) in epochs[1].iter().zip(&direct_pairs) {
            assert_eq!(a.without_timings(), b.without_timings());
        }
    }

    #[test]
    fn epoch_shift_replaces_placements_not_designs() {
        // Multi-variant scenarios must re-place the *same* netlists each
        // epoch: the shift may only touch the placement-sweep seed.
        let scenario = ScenarioSpec {
            variants: 3,
            ..tiny()
        };
        let epoch0 = shifted_jobs(std::slice::from_ref(&scenario), 0).unwrap();
        let epoch1 = shifted_jobs(std::slice::from_ref(&scenario), 1).unwrap();
        for (a, b) in epoch0.iter().zip(&epoch1) {
            assert_eq!(
                a.spec, b.spec,
                "netlist variants must be stable across epochs"
            );
            assert_ne!(a.config.seed, b.config.seed, "sweep seeds must advance");
        }
    }

    #[test]
    fn early_drop_stops_the_producer() {
        let mut prefetcher =
            EpochPrefetcher::start(vec![tiny()], PipelineOptions::with_workers(2), 50, 1);
        let first = prefetcher.next().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        // Dropping after one epoch must not hang on the remaining 49.
        drop(prefetcher);
    }

    #[test]
    fn generation_failure_is_yielded_then_ends_the_stream() {
        let bad = ScenarioSpec {
            design: "nosuch".into(),
            ..tiny()
        };
        let mut prefetcher =
            EpochPrefetcher::start(vec![bad], PipelineOptions::with_workers(1), 3, 1);
        assert!(matches!(
            prefetcher.next(),
            Some(Err(PipelineError::BadScenario(_)))
        ));
        assert!(prefetcher.next().is_none());
    }

    #[test]
    fn ring_round_trips_and_misses_on_damage() {
        let ring = tmp_ring("roundtrip", 8);
        let pairs = synthetic_pairs(3);
        ring.store_epoch(7, 2, &pairs).unwrap();
        assert_eq!(ring.load_epoch(7, 2).unwrap(), pairs);
        // Wrong key or epoch: miss.
        assert!(ring.load_epoch(8, 2).is_none());
        assert!(ring.load_epoch(7, 3).is_none());
        // Truncation anywhere: miss, not a panic or error.
        let path = ring.dir().join("epoch-000002.pope");
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 7, 8, 19, 27, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(ring.load_epoch(7, 2).is_none(), "cut at {cut}");
        }
        // A corrupt pair count must not drive a huge allocation.
        let mut huge = bytes[..28].to_vec();
        huge[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(ring.load_epoch(7, 2).is_none());
        let _ = std::fs::remove_dir_all(ring.dir());
    }

    #[test]
    fn ring_prunes_to_capacity_and_tracks_progress() {
        let ring = tmp_ring("prune", 2);
        let pairs = synthetic_pairs(1);
        for e in 0..4 {
            ring.store_epoch(1, e, &pairs).unwrap();
        }
        // Capacity 2: epochs 0 and 1 pruned, 2 and 3 kept.
        assert!(ring.load_epoch(1, 0).is_none());
        assert!(ring.load_epoch(1, 1).is_none());
        assert!(ring.load_epoch(1, 2).is_some());
        assert!(ring.load_epoch(1, 3).is_some());
        // Progress marker round-trips and prunes consumed epochs.
        assert_eq!(ring.completed_epochs(), 0);
        ring.mark_completed(2).unwrap();
        assert_eq!(ring.completed_epochs(), 3);
        assert!(ring.load_epoch(1, 2).is_none(), "trained epochs are pruned");
        assert!(ring.load_epoch(1, 3).is_some());
        // A mangled progress file degrades to "start over", not an error.
        std::fs::write(ring.dir().join("progress"), b"not a number").unwrap();
        assert_eq!(ring.completed_epochs(), 0);
        let _ = std::fs::remove_dir_all(ring.dir());
    }

    #[test]
    fn killed_stream_resumes_with_the_exact_remaining_epochs() {
        // Reference: an uninterrupted 3-epoch run (no ring).
        let reference =
            EpochPrefetcher::start(vec![tiny()], PipelineOptions::with_workers(2), 3, 1)
                .collect_epochs()
                .unwrap();

        // Interrupted run: consume + train epoch 0, acknowledge it through
        // the StreamCheckpoint handshake, then "crash" (drop mid-stream).
        let mut ring = tmp_ring("resume", 4);
        let mut first = EpochPrefetcher::start_with_ring(
            vec![tiny()],
            PipelineOptions::with_workers(2),
            3,
            1,
            ring.clone(),
        );
        assert_eq!(first.first_epoch(), 0);
        let epoch0 = first.next().unwrap().unwrap();
        for (a, b) in epoch0.iter().zip(&reference[0]) {
            assert_eq!(a.without_timings(), b.without_timings());
        }
        StreamCheckpoint::epoch_completed(&mut ring, 0, &mut scratch_model());
        drop(first);

        // Resumed run: must pick up at epoch 1 and yield exactly the
        // epochs the interrupted run would have — bitwise, timings aside.
        let resumed = EpochPrefetcher::start_with_ring(
            vec![tiny()],
            PipelineOptions::with_workers(2),
            3,
            1,
            ring.clone(),
        );
        assert_eq!(resumed.first_epoch(), 1);
        let rest = resumed.collect_epochs().unwrap();
        assert_eq!(rest.len(), 2, "epoch 0 must not be regenerated");
        for (got, want) in rest.iter().zip(&reference[1..]) {
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want) {
                assert_eq!(a.without_timings(), b.without_timings());
            }
        }
        // A fully-trained ring yields nothing more.
        for e in 1..3 {
            StreamCheckpoint::epoch_completed(&mut ring, e, &mut scratch_model());
        }
        let done = EpochPrefetcher::start_with_ring(
            vec![tiny()],
            PipelineOptions::with_workers(2),
            3,
            1,
            ring.clone(),
        );
        assert_eq!(done.first_epoch(), 3);
        assert!(done.collect_epochs().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(ring.dir());
    }

    #[test]
    fn observed_prefetch_reports_generation_stats() {
        let dir = std::env::temp_dir().join("pop_prefetch_observed_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PipelineOptions::with_workers(2).with_cache_dir(&dir);

        let cold_stats = Arc::new(Mutex::new(GenStats::default()));
        let cold = EpochPrefetcher::start_observed(
            vec![tiny()],
            opts.clone(),
            2,
            1,
            Arc::clone(&cold_stats),
        )
        .collect_epochs()
        .unwrap();
        assert_eq!(cold.len(), 2);
        let stats = *cold_stats.lock().unwrap();
        assert_eq!(stats.jobs, 2, "one job per epoch");
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.place_stage_runs, 4, "2 epochs x 2 pairs");
        assert!(!stats.fully_warm());

        // Warm: the same epochs stream from the CorpusStore — the stats
        // sink is how streaming-path consumers prove it.
        let warm_stats = Arc::new(Mutex::new(GenStats::default()));
        let warm =
            EpochPrefetcher::start_observed(vec![tiny()], opts, 2, 1, Arc::clone(&warm_stats))
                .collect_epochs()
                .unwrap();
        assert_eq!(warm, cold);
        let stats = *warm_stats.lock().unwrap();
        assert_eq!((stats.jobs, stats.cache_hits), (2, 2));
        assert!(stats.fully_warm());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_epochs_stream_back_from_disk() {
        let ring = tmp_ring("spill", 4);
        let scenarios = vec![tiny()];
        let jobs = shifted_jobs(&scenarios, 0).unwrap();
        let key = epoch_key(&jobs);
        // Cold: generated and spilled.
        let cold = epoch_pairs(
            &scenarios,
            0,
            &PipelineOptions::with_workers(2),
            Some(&ring),
            None,
        )
        .unwrap();
        let spilled = ring.load_epoch(key, 0).expect("epoch spilled");
        assert_eq!(spilled, cold);
        // Warm: identical pairs — including the wall-clock provenance,
        // which regeneration could never reproduce, proving the disk path.
        let warm = epoch_pairs(
            &scenarios,
            0,
            &PipelineOptions::with_workers(2),
            Some(&ring),
            None,
        )
        .unwrap();
        assert_eq!(warm, cold);
        let _ = std::fs::remove_dir_all(ring.dir());
    }
}
