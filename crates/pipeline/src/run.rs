//! The staged, streaming corpus generator.
//!
//! Four stages, each on its own [`WorkerPool`], connected by bounded
//! [`BoundedQueue`]s (backpressure keeps memory flat while designs
//! stream through):
//!
//! ```text
//! jobs ─▶ [prep: netlist + fabric calibration] ─▶ [place] ─▶ [route] ─▶ [raster + tensors] ─▶ collector
//! ```
//!
//! Every stage calls the *same* `pop_core::dataset::DesignContext` stage
//! functions the sequential `build_design_dataset` driver uses, and the
//! collector reassembles pairs by `(job, sweep index)` — so the output is
//! bitwise-identical to the sequential path for identical seeds, regardless
//! of scheduling (wall-clock `PairMeta` timings aside).

use crate::error::PipelineError;
use crate::scenario::{DesignJob, ScenarioSpec};
use pop_core::dataset::{build_design_dataset, DesignContext, DesignDataset, Pair};
use pop_core::CoreError;
use pop_exec::{BoundedQueue, WorkerPool};
use pop_place::{PlaceOptions, Placement};
use pop_route::RouteResult;
use std::sync::{mpsc, Arc};

/// Tuning knobs of the parallel generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Worker threads per heavy stage (placement and routing pools each get
    /// this many; rasterisation gets half, preparation is capped by the
    /// number of designs).
    pub workers: usize,
    /// Depth of the bounded inter-stage queues — the backpressure window.
    pub queue_depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        PipelineOptions {
            workers: parallelism.min(8),
            queue_depth: 2 * parallelism.clamp(1, 8),
        }
    }
}

impl PipelineOptions {
    /// A pool sized for `workers` threads per heavy stage.
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions {
            workers: workers.max(1),
            queue_depth: 2 * workers.max(1),
        }
    }
}

struct PlaceTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
}

struct RouteTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
    placement: Placement,
    place_micros: u64,
}

struct RasterTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
    placement: Placement,
    routing: RouteResult,
    place_micros: u64,
    route_micros: u64,
}

enum Event {
    Context {
        job: usize,
        ctx: Arc<DesignContext>,
    },
    Pair {
        job: usize,
        index: usize,
        pair: Box<Pair>,
    },
    Failed {
        job: usize,
        error: CoreError,
    },
}

/// Expands scenarios into concrete generation jobs, in scenario order.
///
/// # Errors
///
/// Propagates scenario validation failures.
pub fn expand(scenarios: &[ScenarioSpec]) -> Result<Vec<DesignJob>, PipelineError> {
    let mut jobs = Vec::new();
    for s in scenarios {
        jobs.extend(s.jobs()?);
    }
    Ok(jobs)
}

/// Generates every job's dataset on the staged parallel pipeline,
/// returning datasets in job order.
///
/// # Errors
///
/// Returns the first stage failure in job order, or
/// [`PipelineError::Incomplete`] when a worker died without delivering.
pub fn generate_jobs(
    jobs: Vec<DesignJob>,
    opts: &PipelineOptions,
) -> Result<Vec<DesignDataset>, PipelineError> {
    let njobs = jobs.len();
    if njobs == 0 {
        return Ok(Vec::new());
    }
    let workers = opts.workers.max(1);
    let depth = opts.queue_depth.max(1);
    let expected: Vec<usize> = jobs.iter().map(|j| j.config.pairs_per_design).collect();
    let names: Vec<String> = jobs.iter().map(|j| j.spec.name.clone()).collect();

    let q_prep: Arc<BoundedQueue<(usize, DesignJob)>> = Arc::new(BoundedQueue::new(njobs));
    let q_place: Arc<BoundedQueue<PlaceTask>> = Arc::new(BoundedQueue::new(depth));
    let q_route: Arc<BoundedQueue<RouteTask>> = Arc::new(BoundedQueue::new(depth));
    let q_raster: Arc<BoundedQueue<RasterTask>> = Arc::new(BoundedQueue::new(depth));
    let (tx, rx) = mpsc::channel::<Event>();

    // Seed the first stage up front (capacity == njobs, so this never
    // blocks) and close it: prep workers drain it and exit.
    for (job, j) in jobs.into_iter().enumerate() {
        q_prep
            .push((job, j))
            .unwrap_or_else(|_| unreachable!("prep queue sized to all jobs"));
    }
    q_prep.close();

    // Every stage call is wrapped in `catch_unwind` (stage state is
    // immutable `&self`, so unwinding cannot corrupt it): a panicking stage
    // becomes a per-job failure instead of killing the worker. This is
    // load-bearing for shutdown — if a stage's *last* worker died, upstream
    // workers would block forever in `push` on a queue nobody pops and
    // nobody has closed yet, and the stage-by-stage join below would hang.
    fn run_stage<T>(
        op: impl FnOnce() -> Result<T, CoreError> + std::panic::UnwindSafe,
    ) -> Result<T, CoreError> {
        match std::panic::catch_unwind(op) {
            Ok(result) => result,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(CoreError::Pipeline(format!("stage panicked: {msg}")))
            }
        }
    }

    let mut prep_pool = WorkerPool::spawn("pop-pipe-prep", workers.min(njobs), |_| {
        let q_prep = Arc::clone(&q_prep);
        let q_place = Arc::clone(&q_place);
        let tx = tx.clone();
        move || {
            while let Some((job, design_job)) = q_prep.pop() {
                let prepared = run_stage(std::panic::AssertUnwindSafe(|| {
                    DesignContext::prepare(&design_job.spec, &design_job.config)
                }));
                match prepared {
                    Ok(ctx) => {
                        let ctx = Arc::new(ctx);
                        let _ = tx.send(Event::Context {
                            job,
                            ctx: Arc::clone(&ctx),
                        });
                        for (index, popts) in ctx.sweep_options().into_iter().enumerate() {
                            let task = PlaceTask {
                                job,
                                index,
                                ctx: Arc::clone(&ctx),
                                popts,
                            };
                            if q_place.push(task).is_err() {
                                return; // pipeline tearing down
                            }
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job, error });
                    }
                }
            }
        }
    });

    let mut place_pool = WorkerPool::spawn("pop-pipe-place", workers, |_| {
        let q_place = Arc::clone(&q_place);
        let q_route = Arc::clone(&q_route);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_place.pop() {
                let placed =
                    run_stage(std::panic::AssertUnwindSafe(|| t.ctx.place_stage(&t.popts)));
                match placed {
                    Ok((placement, place_micros)) => {
                        let task = RouteTask {
                            job: t.job,
                            index: t.index,
                            ctx: t.ctx,
                            popts: t.popts,
                            placement,
                            place_micros,
                        };
                        if q_route.push(task).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job: t.job, error });
                    }
                }
            }
        }
    });

    let mut route_pool = WorkerPool::spawn("pop-pipe-route", workers, |_| {
        let q_route = Arc::clone(&q_route);
        let q_raster = Arc::clone(&q_raster);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_route.pop() {
                let routed = run_stage(std::panic::AssertUnwindSafe(|| {
                    t.ctx.route_stage(&t.placement)
                }));
                match routed {
                    Ok((routing, route_micros)) => {
                        let task = RasterTask {
                            job: t.job,
                            index: t.index,
                            ctx: t.ctx,
                            popts: t.popts,
                            placement: t.placement,
                            routing,
                            place_micros: t.place_micros,
                            route_micros,
                        };
                        if q_raster.push(task).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job: t.job, error });
                    }
                }
            }
        }
    });

    let mut raster_pool = WorkerPool::spawn("pop-pipe-raster", workers.div_ceil(2), |_| {
        let q_raster = Arc::clone(&q_raster);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_raster.pop() {
                let rastered = run_stage(std::panic::AssertUnwindSafe(|| {
                    Ok(t.ctx.raster_stage(
                        t.index,
                        &t.popts,
                        &t.placement,
                        &t.routing,
                        t.place_micros,
                        t.route_micros,
                    ))
                }));
                match rastered {
                    Ok(pair) => {
                        let _ = tx.send(Event::Pair {
                            job: t.job,
                            index: t.index,
                            pair: Box::new(pair),
                        });
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job: t.job, error });
                    }
                }
            }
        }
    });

    // Graceful drain, stage by stage: once a stage's pool has joined, no
    // more tasks can enter the next queue, so closing it lets the next
    // pool drain and exit. Workers cannot die mid-stage (panics are caught
    // above), so every task reaches the collector as a Pair or a failure;
    // the completeness check below is a backstop.
    let _ = prep_pool.join();
    q_place.close();
    let _ = place_pool.join();
    q_route.close();
    let _ = route_pool.join();
    q_raster.close();
    let _ = raster_pool.join();
    drop(tx);

    // Reassemble in deterministic (job, sweep-index) order.
    let mut ctxs: Vec<Option<Arc<DesignContext>>> = vec![None; njobs];
    let mut slots: Vec<Vec<Option<Pair>>> = expected.iter().map(|&n| vec![None; n]).collect();
    let mut first_error: Option<(usize, CoreError)> = None;
    for event in rx {
        match event {
            Event::Context { job, ctx } => ctxs[job] = Some(ctx),
            Event::Pair { job, index, pair } => slots[job][index] = Some(*pair),
            Event::Failed { job, error } => {
                if first_error.as_ref().is_none_or(|(j, _)| job < *j) {
                    first_error = Some((job, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Err(PipelineError::Core(error));
    }
    let mut datasets = Vec::with_capacity(njobs);
    for (job, (ctx, pairs)) in ctxs.into_iter().zip(slots).enumerate() {
        let complete = pairs.iter().all(Option::is_some);
        let (Some(ctx), true) = (ctx, complete) else {
            return Err(PipelineError::Incomplete {
                design: names[job].clone(),
            });
        };
        let ctx = Arc::try_unwrap(ctx).unwrap_or_else(|arc| (*arc).clone());
        datasets.push(ctx.into_dataset(pairs.into_iter().map(Option::unwrap).collect()));
    }
    Ok(datasets)
}

/// Generates the corpus described by `scenarios` on the parallel pipeline:
/// [`expand`] then [`generate_jobs`], datasets in scenario order.
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_corpus(
    scenarios: &[ScenarioSpec],
    opts: &PipelineOptions,
) -> Result<Vec<DesignDataset>, PipelineError> {
    generate_jobs(expand(scenarios)?, opts)
}

/// The sequential reference path: the same jobs, one
/// [`build_design_dataset`] call at a time on the calling thread. The
/// parallel pipeline's output is bitwise-identical to this (see the golden
/// determinism tests).
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_corpus_sequential(
    scenarios: &[ScenarioSpec],
) -> Result<Vec<DesignDataset>, PipelineError> {
    expand(scenarios)?
        .into_iter()
        .map(|job| build_design_dataset(&job.spec, &job.config).map_err(PipelineError::Core))
        .collect()
}
