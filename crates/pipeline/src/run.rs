//! The staged, streaming, **cache-aware** corpus generator.
//!
//! Four stages, each on its own [`WorkerPool`], connected by bounded
//! [`BoundedQueue`]s (backpressure keeps memory flat while designs
//! stream through):
//!
//! ```text
//! jobs ─▶ [prep: cache probe → netlist + fabric calibration] ─▶ [place] ─▶ [route]
//!      ─▶ [raster + tensors → cache write on job completion] ─▶ collector
//! ```
//!
//! Every stage calls the *same* `pop_core::dataset::DesignContext` stage
//! functions the sequential `build_design_dataset` driver uses, and pairs
//! are reassembled by `(job, sweep index)` — so the output is
//! bitwise-identical to the sequential path for identical seeds, regardless
//! of scheduling (wall-clock `PairMeta` timings aside).
//!
//! With a [`PipelineOptions::cache_dir`] configured, the prep stage probes
//! a [`CorpusStore`] per job (keyed by design name + scenario fingerprint)
//! and short-circuits the place/route/raster stages entirely on a hit; the
//! raster stage writes each job's dataset back into the store the moment
//! its last pair lands. A warm re-run therefore streams straight from disk
//! — [`GenStats`] reports the hit count and how many place/route stage
//! executions actually ran, which is the observable contract ("zero on
//! warm") the integrity tests pin down.

use crate::error::PipelineError;
use crate::scenario::{DesignJob, ScenarioSpec};
use pop_core::dataset::{
    build_design_dataset, ClaimGuard, ClaimOutcome, CorpusStore, DesignContext, DesignDataset, Pair,
};
use pop_core::CoreError;
use pop_exec::{BoundedQueue, WorkerPool};
use pop_place::{PlaceOptions, Placement};
use pop_route::RouteResult;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Tuning knobs of the parallel generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Worker threads per heavy stage (placement and routing pools each get
    /// this many; rasterisation gets half, preparation is capped by the
    /// number of designs).
    pub workers: usize,
    /// Depth of the bounded inter-stage queues — the backpressure window.
    pub queue_depth: usize,
    /// Per-job disk cache ([`CorpusStore`] root): probed before generating,
    /// written as jobs complete. `None` disables caching (always generate).
    pub cache_dir: Option<PathBuf>,
    /// Total byte budget of the cache: after each write, least-recently-
    /// used entries are evicted until the store fits. `None` = unbounded
    /// (the store otherwise grows by one file per job fingerprint forever).
    pub cache_budget: Option<u64>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        PipelineOptions {
            workers: parallelism.min(8),
            queue_depth: 2 * parallelism.clamp(1, 8),
            cache_dir: None,
            cache_budget: None,
        }
    }
}

impl PipelineOptions {
    /// A pool sized for `workers` threads per heavy stage.
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions {
            workers: workers.max(1),
            queue_depth: 2 * workers.max(1),
            cache_dir: None,
            cache_budget: None,
        }
    }

    /// The same options with a per-job disk cache rooted at `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The same options with a total cache size budget in bytes (LRU
    /// entries beyond it are swept after each write).
    #[must_use]
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = Some(bytes);
        self
    }
}

/// What a [`generate_jobs_with_stats`] run actually executed — the
/// observable half of the cache contract. A fully warm run reports
/// `cache_hits == jobs` and **zero** place/route stage executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Jobs in the corpus.
    pub jobs: usize,
    /// Jobs served straight from the [`CorpusStore`].
    pub cache_hits: usize,
    /// Placement-stage executions (annealing runs) that actually happened.
    pub place_stage_runs: usize,
    /// Routing-stage executions that actually happened.
    pub route_stage_runs: usize,
    /// Cache writes that failed (disk full, permissions, …). The affected
    /// datasets are still delivered — a cold run never dies because its
    /// cache is sick — but the jobs will regenerate on the next run, so
    /// non-zero here means re-runs won't be fully warm.
    pub cache_write_failures: usize,
}

impl GenStats {
    /// Folds another run's counters into this one — consumers spanning
    /// many generation runs (the epoch prefetcher's observed mode, the
    /// eval harness's per-scenario hold-out splits) accumulate one total.
    pub fn absorb(&mut self, other: GenStats) {
        self.jobs += other.jobs;
        self.cache_hits += other.cache_hits;
        self.place_stage_runs += other.place_stage_runs;
        self.route_stage_runs += other.route_stage_runs;
        self.cache_write_failures += other.cache_write_failures;
    }

    /// Whether this run streamed *everything* from the cache: every job a
    /// hit, zero place/route stage executions — the observable the warm
    /// re-run acceptance checks assert.
    pub fn fully_warm(&self) -> bool {
        self.cache_hits == self.jobs && self.place_stage_runs == 0 && self.route_stage_runs == 0
    }
}

struct PlaceTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
}

struct RouteTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
    placement: Placement,
    place_micros: u64,
}

struct RasterTask {
    job: usize,
    index: usize,
    ctx: Arc<DesignContext>,
    popts: PlaceOptions,
    placement: Placement,
    routing: RouteResult,
    place_micros: u64,
    route_micros: u64,
}

enum Event {
    Dataset {
        job: usize,
        ds: Box<DesignDataset>,
        from_cache: bool,
    },
    Failed {
        job: usize,
        error: CoreError,
    },
}

/// Per-job reassembly state shared by the prep and raster stages: the prep
/// stage parks the job's context here, raster workers fill sweep-index
/// slots, and whichever worker lands the *last* pair assembles the
/// dataset (and writes the cache) right there — "caches are written as
/// jobs complete", not at the end of the run.
struct JobSlot {
    ctx: Option<Arc<DesignContext>>,
    pairs: Vec<Option<Pair>>,
    filled: usize,
    /// Cross-process generation claim, held from the prep-stage cache miss
    /// until the raster stage has written the entry (the guard is dropped
    /// *after* the store write, so waiters always find the entry).
    claim: Option<ClaimGuard>,
}

/// Expands scenarios into concrete generation jobs, in scenario order.
///
/// # Errors
///
/// Propagates scenario validation failures.
pub fn expand(scenarios: &[ScenarioSpec]) -> Result<Vec<DesignJob>, PipelineError> {
    let mut jobs = Vec::new();
    for s in scenarios {
        jobs.extend(s.jobs()?);
    }
    Ok(jobs)
}

/// Generates every job's dataset on the staged parallel pipeline,
/// returning datasets in job order.
///
/// # Errors
///
/// Returns the first stage failure in job order, or
/// [`PipelineError::Incomplete`] when a worker died without delivering.
pub fn generate_jobs(
    jobs: Vec<DesignJob>,
    opts: &PipelineOptions,
) -> Result<Vec<DesignDataset>, PipelineError> {
    generate_jobs_with_stats(jobs, opts).map(|(datasets, _)| datasets)
}

/// [`generate_jobs`] plus the run's [`GenStats`] — how many jobs came from
/// the cache and how many place/route stage executions actually ran.
///
/// # Errors
///
/// Returns the first stage failure in job order, or
/// [`PipelineError::Incomplete`] when a worker died without delivering.
pub fn generate_jobs_with_stats(
    jobs: Vec<DesignJob>,
    opts: &PipelineOptions,
) -> Result<(Vec<DesignDataset>, GenStats), PipelineError> {
    let njobs = jobs.len();
    if njobs == 0 {
        return Ok((Vec::new(), GenStats::default()));
    }
    let workers = opts.workers.max(1);
    let depth = opts.queue_depth.max(1);
    let store = opts.cache_dir.as_ref().map(|dir| {
        let store = CorpusStore::new(dir);
        match opts.cache_budget {
            Some(bytes) => store.with_budget(bytes),
            None => store,
        }
    });
    let expected: Vec<usize> = jobs.iter().map(|j| j.config.pairs_per_design).collect();
    let names: Vec<String> = jobs.iter().map(|j| j.spec.name.clone()).collect();
    let slots: Arc<Mutex<Vec<JobSlot>>> = Arc::new(Mutex::new(
        expected
            .iter()
            .map(|&n| JobSlot {
                ctx: None,
                pairs: vec![None; n],
                filled: 0,
                claim: None,
            })
            .collect(),
    ));
    let place_runs = Arc::new(AtomicUsize::new(0));
    let route_runs = Arc::new(AtomicUsize::new(0));
    let cache_write_failures = Arc::new(AtomicUsize::new(0));

    // Global observability: counters mirror the per-run GenStats (which
    // stays the function's return value — the registry accumulates across
    // runs, GenStats is this run's exact ledger), queues publish depth
    // gauges and idle-time histograms under `exec.queue.pipe-*`.
    let obs = pop_obs::global();
    let obs_jobs = obs.counter("pipeline.jobs");
    let obs_pairs = obs.counter("pipeline.pairs");
    let obs_cache_hits = obs.counter("pipeline.cache.hits");
    let obs_cache_misses = obs.counter("pipeline.cache.misses");
    let obs_cache_write_failures = obs.counter("pipeline.cache.write_failures");
    obs_jobs.add(njobs as u64);

    let q_prep: Arc<BoundedQueue<(usize, DesignJob)>> = Arc::new(BoundedQueue::new(njobs));
    let q_place: Arc<BoundedQueue<PlaceTask>> = Arc::new(BoundedQueue::named(depth, "pipe-place"));
    let q_route: Arc<BoundedQueue<RouteTask>> = Arc::new(BoundedQueue::named(depth, "pipe-route"));
    let q_raster: Arc<BoundedQueue<RasterTask>> =
        Arc::new(BoundedQueue::named(depth, "pipe-raster"));
    let (tx, rx) = mpsc::channel::<Event>();

    // Seed the first stage up front (capacity == njobs, so this never
    // blocks) and close it: prep workers drain it and exit.
    for (job, j) in jobs.into_iter().enumerate() {
        q_prep
            .push((job, j))
            .unwrap_or_else(|_| unreachable!("prep queue sized to all jobs"));
    }
    q_prep.close();

    // Every stage call is wrapped in `catch_unwind` (stage state is
    // immutable `&self`, so unwinding cannot corrupt it): a panicking stage
    // becomes a per-job failure instead of killing the worker. This is
    // load-bearing for shutdown — if a stage's *last* worker died, upstream
    // workers would block forever in `push` on a queue nobody pops and
    // nobody has closed yet, and the stage-by-stage join below would hang.
    fn run_stage<T>(
        op: impl FnOnce() -> Result<T, CoreError> + std::panic::UnwindSafe,
    ) -> Result<T, CoreError> {
        match std::panic::catch_unwind(op) {
            Ok(result) => result,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(CoreError::Pipeline(format!("stage panicked: {msg}")))
            }
        }
    }

    let mut prep_pool = WorkerPool::spawn("pop-pipe-prep", workers.min(njobs), |_| {
        let q_prep = Arc::clone(&q_prep);
        let q_place = Arc::clone(&q_place);
        let slots = Arc::clone(&slots);
        let store = store.clone();
        let obs_cache_hits = Arc::clone(&obs_cache_hits);
        let obs_cache_misses = Arc::clone(&obs_cache_misses);
        let tx = tx.clone();
        move || {
            while let Some((job, design_job)) = q_prep.pop() {
                // Cache resolution first: a hit skips fabric calibration
                // AND the entire place/route/raster chain for this job. On
                // a miss, `begin` *claims* the entry (a claim file created
                // exclusively), so concurrent cold runs over one cache dir
                // wait for each other's generation instead of duplicating
                // it — the waiter is then served from the cache.
                let mut claim = None;
                if let Some(store) = &store {
                    match store.begin(&design_job.spec, &design_job.config) {
                        Ok(ClaimOutcome::Cached(ds)) => {
                            obs_cache_hits.inc();
                            let _ = tx.send(Event::Dataset {
                                job,
                                ds,
                                from_cache: true,
                            });
                            continue;
                        }
                        Ok(ClaimOutcome::Claimed(guard)) => {
                            obs_cache_misses.inc();
                            claim = Some(guard);
                        }
                        Err(error) => {
                            let _ = tx.send(Event::Failed { job, error });
                            continue;
                        }
                    }
                }
                let prepared = {
                    let _span = pop_obs::span!("prep", job = job, design = &design_job.spec.name);
                    run_stage(std::panic::AssertUnwindSafe(|| {
                        DesignContext::prepare(&design_job.spec, &design_job.config)
                    }))
                };
                match prepared {
                    Ok(ctx) => {
                        let ctx = Arc::new(ctx);
                        {
                            let mut slots = slots.lock().expect("slot lock");
                            slots[job].ctx = Some(Arc::clone(&ctx));
                            // Parked with the job so the raster worker that
                            // assembles it releases the claim only after
                            // the cache write.
                            slots[job].claim = claim;
                        }
                        for (index, popts) in ctx.sweep_options().into_iter().enumerate() {
                            let task = PlaceTask {
                                job,
                                index,
                                ctx: Arc::clone(&ctx),
                                popts,
                            };
                            if q_place.push(task).is_err() {
                                return; // pipeline tearing down
                            }
                        }
                    }
                    Err(error) => {
                        // `claim` (if any) drops here: a failed prepare
                        // releases the entry for other processes.
                        let _ = tx.send(Event::Failed { job, error });
                    }
                }
            }
        }
    });

    let mut place_pool = WorkerPool::spawn("pop-pipe-place", workers, |_| {
        let q_place = Arc::clone(&q_place);
        let q_route = Arc::clone(&q_route);
        let place_runs = Arc::clone(&place_runs);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_place.pop() {
                place_runs.fetch_add(1, Ordering::Relaxed);
                let placed = {
                    let _span = pop_obs::span!("place_stage", job = t.job, pair = t.index);
                    run_stage(std::panic::AssertUnwindSafe(|| t.ctx.place_stage(&t.popts)))
                };
                match placed {
                    Ok((placement, place_micros)) => {
                        let task = RouteTask {
                            job: t.job,
                            index: t.index,
                            ctx: t.ctx,
                            popts: t.popts,
                            placement,
                            place_micros,
                        };
                        if q_route.push(task).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job: t.job, error });
                    }
                }
            }
        }
    });

    let mut route_pool = WorkerPool::spawn("pop-pipe-route", workers, |_| {
        let q_route = Arc::clone(&q_route);
        let q_raster = Arc::clone(&q_raster);
        let route_runs = Arc::clone(&route_runs);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_route.pop() {
                route_runs.fetch_add(1, Ordering::Relaxed);
                let routed = {
                    let _span = pop_obs::span!("route_stage", job = t.job, pair = t.index);
                    run_stage(std::panic::AssertUnwindSafe(|| {
                        t.ctx.route_stage(&t.placement)
                    }))
                };
                match routed {
                    Ok((routing, route_micros)) => {
                        let task = RasterTask {
                            job: t.job,
                            index: t.index,
                            ctx: t.ctx,
                            popts: t.popts,
                            placement: t.placement,
                            routing,
                            place_micros: t.place_micros,
                            route_micros,
                        };
                        if q_raster.push(task).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job: t.job, error });
                    }
                }
            }
        }
    });

    let mut raster_pool = WorkerPool::spawn("pop-pipe-raster", workers.div_ceil(2), |_| {
        let q_raster = Arc::clone(&q_raster);
        let slots = Arc::clone(&slots);
        let store = store.clone();
        let cache_write_failures = Arc::clone(&cache_write_failures);
        let obs_pairs = Arc::clone(&obs_pairs);
        let obs_cache_write_failures = Arc::clone(&obs_cache_write_failures);
        let tx = tx.clone();
        move || {
            while let Some(t) = q_raster.pop() {
                let RasterTask {
                    job,
                    index,
                    ctx: task_ctx,
                    popts,
                    placement,
                    routing,
                    place_micros,
                    route_micros,
                } = t;
                let rastered = {
                    let _span = pop_obs::span!("raster_stage", job = job, pair = index);
                    run_stage(std::panic::AssertUnwindSafe(|| {
                        Ok(task_ctx.raster_stage(
                            index,
                            &popts,
                            &placement,
                            &routing,
                            place_micros,
                            route_micros,
                        ))
                    }))
                };
                // Release this task's context handle before assembly so
                // the slot's Arc is the last one standing on a job's final
                // pair and try_unwrap below reclaims the context without a
                // deep clone (netlist + routing graph).
                drop(task_ctx);
                let pair = match rastered {
                    Ok(pair) => {
                        obs_pairs.inc();
                        pair
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Failed { job, error });
                        continue;
                    }
                };
                // Slot the pair in; the worker landing a job's final pair
                // assembles the dataset and persists it immediately.
                let finished = {
                    let mut slots = slots.lock().expect("slot lock");
                    let slot = &mut slots[job];
                    slot.pairs[index] = Some(pair);
                    slot.filled += 1;
                    (slot.filled == slot.pairs.len()).then(|| {
                        (
                            slot.ctx.take(),
                            std::mem::take(&mut slot.pairs),
                            slot.claim.take(),
                        )
                    })
                };
                let Some((ctx, pairs, claim)) = finished else {
                    continue;
                };
                let Some(ctx) = ctx else {
                    let _ = tx.send(Event::Failed {
                        job,
                        error: CoreError::Pipeline(
                            "job completed without a prepared context".into(),
                        ),
                    });
                    continue;
                };
                let ctx = Arc::try_unwrap(ctx).unwrap_or_else(|arc| (*arc).clone());
                let pairs: Vec<Pair> = pairs.into_iter().map(Option::unwrap).collect();
                let (spec, config) = (ctx.spec.clone(), ctx.config.clone());
                let ds = ctx.into_dataset(pairs);
                if let Some(store) = &store {
                    // A sick cache must not kill a healthy generation run:
                    // the dataset is delivered regardless, the failure is
                    // counted (GenStats) and warned — only the *next* run
                    // pays, by regenerating this job.
                    if let Err(error) = store.store(&ds, &spec, &config) {
                        cache_write_failures.fetch_add(1, Ordering::Relaxed);
                        obs_cache_write_failures.inc();
                        eprintln!(
                            "pop-pipeline: cache write failed for '{}' (delivering uncached): {error}",
                            spec.name
                        );
                    }
                }
                // Entry written (or write abandoned): release the
                // generation claim so cross-process waiters proceed.
                drop(claim);
                let _ = tx.send(Event::Dataset {
                    job,
                    ds: Box::new(ds),
                    from_cache: false,
                });
            }
        }
    });

    // Graceful drain, stage by stage: once a stage's pool has joined, no
    // more tasks can enter the next queue, so closing it lets the next
    // pool drain and exit. Workers cannot die mid-stage (panics are caught
    // above), so every task reaches the collector as a Pair or a failure;
    // the completeness check below is a backstop.
    let _ = prep_pool.join();
    q_place.close();
    let _ = place_pool.join();
    q_route.close();
    let _ = route_pool.join();
    q_raster.close();
    let _ = raster_pool.join();
    drop(tx);

    // Collect assembled datasets in deterministic job order.
    let mut collected: Vec<Option<DesignDataset>> = (0..njobs).map(|_| None).collect();
    let mut cache_hits = 0usize;
    let mut first_error: Option<(usize, CoreError)> = None;
    for event in rx {
        match event {
            Event::Dataset {
                job,
                ds,
                from_cache,
            } => {
                if from_cache {
                    cache_hits += 1;
                }
                collected[job] = Some(*ds);
            }
            Event::Failed { job, error } => {
                if first_error.as_ref().is_none_or(|(j, _)| job < *j) {
                    first_error = Some((job, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Err(PipelineError::Core(error));
    }
    let mut datasets = Vec::with_capacity(njobs);
    for (job, ds) in collected.into_iter().enumerate() {
        let Some(ds) = ds else {
            return Err(PipelineError::Incomplete {
                design: names[job].clone(),
            });
        };
        datasets.push(ds);
    }
    let stats = GenStats {
        jobs: njobs,
        cache_hits,
        place_stage_runs: place_runs.load(Ordering::Relaxed),
        route_stage_runs: route_runs.load(Ordering::Relaxed),
        cache_write_failures: cache_write_failures.load(Ordering::Relaxed),
    };
    Ok((datasets, stats))
}

/// Expands every scenario's **held-out evaluation split**
/// ([`ScenarioSpec::holdout_jobs`]): same designs, placement-sweep seeds
/// advanced past `train_epochs` training epochs, `eval_pairs` placements
/// per variant — in scenario order.
///
/// # Errors
///
/// Propagates scenario validation failures.
pub fn expand_holdout(
    scenarios: &[ScenarioSpec],
    eval_pairs: usize,
    train_epochs: usize,
) -> Result<Vec<DesignJob>, PipelineError> {
    let mut jobs = Vec::new();
    for s in scenarios {
        jobs.extend(s.holdout_jobs(eval_pairs, train_epochs)?);
    }
    Ok(jobs)
}

/// Generates every scenario's held-out evaluation split on the parallel
/// pipeline ([`expand_holdout`] → [`generate_jobs_with_stats`]), datasets
/// in scenario order. The split is cache-fingerprint-aware: with a
/// [`PipelineOptions::cache_dir`] configured, a warm re-run reports 100 %
/// cache hits and executes zero place/route stages.
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_holdout_with_stats(
    scenarios: &[ScenarioSpec],
    eval_pairs: usize,
    train_epochs: usize,
    opts: &PipelineOptions,
) -> Result<(Vec<DesignDataset>, GenStats), PipelineError> {
    generate_jobs_with_stats(expand_holdout(scenarios, eval_pairs, train_epochs)?, opts)
}

/// Generates the corpus described by `scenarios` on the parallel pipeline:
/// [`expand`] then [`generate_jobs`], datasets in scenario order.
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_corpus(
    scenarios: &[ScenarioSpec],
    opts: &PipelineOptions,
) -> Result<Vec<DesignDataset>, PipelineError> {
    generate_jobs(expand(scenarios)?, opts)
}

/// [`generate_corpus`] plus the run's [`GenStats`] (cache hits, actual
/// place/route stage executions) — the observable a warm-cache re-run is
/// judged by.
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_corpus_with_stats(
    scenarios: &[ScenarioSpec],
    opts: &PipelineOptions,
) -> Result<(Vec<DesignDataset>, GenStats), PipelineError> {
    generate_jobs_with_stats(expand(scenarios)?, opts)
}

/// The sequential reference path: the same jobs, one
/// [`build_design_dataset`] call at a time on the calling thread. The
/// parallel pipeline's output is bitwise-identical to this (see the golden
/// determinism tests).
///
/// # Errors
///
/// Propagates scenario validation and generation failures.
pub fn generate_corpus_sequential(
    scenarios: &[ScenarioSpec],
) -> Result<Vec<DesignDataset>, PipelineError> {
    expand(scenarios)?
        .into_iter()
        .map(|job| build_design_dataset(&job.spec, &job.config).map_err(PipelineError::Core))
        .collect()
}
