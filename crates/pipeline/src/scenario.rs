//! Declarative scenario descriptions: what corpus to generate, instead of
//! hard-coded preset loops.
//!
//! A [`ScenarioSpec`] names a Table 2 design preset and the knobs that
//! matter for congestion diversity — design scale, image resolution,
//! placements per design, **target fabric utilization** (density of the
//! auto-sized grid), interior **aspect ratio**, the netlist's **net-degree
//! profile** (mean fanout + locality) and a **seed range** producing
//! several netlist variants of the same design family. [`ScenarioSpec::jobs`]
//! expands it into concrete `(SyntheticSpec, ExperimentConfig)` generation
//! jobs; the [`registry`] holds named, ready-to-run scenarios.

use crate::error::PipelineError;
use pop_core::ExperimentConfig;
use pop_netlist::{presets, SyntheticSpec};
use pop_place::PlaceStrategy;

/// One concrete generation job: a synthetic design plus the experiment
/// configuration to generate it under. Produced by [`ScenarioSpec::jobs`];
/// consumed by the pipeline (or, sequentially, by
/// `pop_core::dataset::build_design_dataset`).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignJob {
    /// Name of the scenario this job came from.
    pub scenario: String,
    /// The netlist to generate (variant seed and fanout profile applied).
    pub spec: SyntheticSpec,
    /// The data-path configuration (resolution, sweep seed, fabric
    /// density/aspect, …).
    pub config: ExperimentConfig,
}

/// A declarative description of one slice of a training/eval corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (also the registry key).
    pub name: String,
    /// Table 2 design preset the netlists derive from.
    pub design: String,
    /// Linear scale applied to the preset (grid size follows design size).
    pub design_scale: f64,
    /// Image resolution (power of two).
    pub resolution: usize,
    /// Placements generated per design variant.
    pub pairs_per_design: usize,
    /// Number of netlist variants (distinct derived seeds) of the design.
    pub variants: usize,
    /// Master seed: placement-sweep base seed and variant-seed derivation.
    pub seed: u64,
    /// Target fabric utilization in `(0, 1]`; the auto-sizer provisions
    /// `1 / target_utilization` site headroom, so higher values mean
    /// denser, hotter fabrics.
    pub target_utilization: f64,
    /// Interior aspect ratio (width / height) of the fabric.
    pub aspect_ratio: f64,
    /// Mean net fanout of the generated netlists (net-degree profile).
    pub mean_fanout: f64,
    /// Sink-locality of the generated netlists in `[0, 1]`.
    pub locality: f64,
    /// How each placement is executed: `Sequential` (default) or
    /// `ParallelRegions { regions, threads }` — the knob for corpora built
    /// around a single *large* design, where the sweep alone cannot fill
    /// the placement pool and the annealer itself must parallelise. The
    /// generated data is deterministic in `(seed, regions)`; the thread
    /// count never changes it (and is excluded from cache fingerprints).
    pub place_strategy: PlaceStrategy,
}

impl Default for ScenarioSpec {
    /// The `baseline` scenario: `diffeq2` at the test scale with the
    /// paper-default fabric (≈77 % utilization, square grid).
    fn default() -> Self {
        ScenarioSpec {
            name: "baseline".into(),
            design: "diffeq2".into(),
            design_scale: 0.015,
            resolution: 32,
            pairs_per_design: 4,
            variants: 1,
            seed: 1,
            target_utilization: 1.0 / 1.3,
            aspect_ratio: 1.0,
            mean_fanout: 3.0,
            locality: 0.75,
            place_strategy: PlaceStrategy::Sequential,
        }
    }
}

/// Deterministic seed mixer (FNV-1a over the inputs) for variant seeds.
fn mix_seed(base: u64, variant: u64) -> u64 {
    let mut h = pop_core::dataset::Fnv1a::new();
    h.eat(base);
    h.eat(variant);
    h.finish()
}

impl ScenarioSpec {
    /// Checks internal consistency and that the design preset exists.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadScenario`] describing the first problem.
    pub fn validate(&self) -> Result<(), PipelineError> {
        let bad = |msg: String| Err(PipelineError::BadScenario(msg));
        if presets::by_name(&self.design).is_none() {
            return bad(format!("unknown design preset '{}'", self.design));
        }
        if !self.resolution.is_power_of_two() {
            return bad(format!(
                "resolution {} is not a power of two",
                self.resolution
            ));
        }
        if self.pairs_per_design == 0 || self.variants == 0 {
            return bad("pairs_per_design and variants must be positive".into());
        }
        if !(self.target_utilization.is_finite()
            && self.target_utilization > 0.0
            && self.target_utilization <= 1.0)
        {
            return bad(format!(
                "target_utilization {} outside (0, 1]",
                self.target_utilization
            ));
        }
        if !(self.aspect_ratio.is_finite() && self.aspect_ratio > 0.0) {
            return bad(format!(
                "aspect_ratio {} must be positive",
                self.aspect_ratio
            ));
        }
        if !(self.mean_fanout.is_finite() && self.mean_fanout >= 1.0) {
            return bad(format!("mean_fanout {} must be >= 1", self.mean_fanout));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return bad(format!("locality {} outside [0, 1]", self.locality));
        }
        if !(self.design_scale.is_finite() && self.design_scale > 0.0) {
            return bad(format!(
                "design_scale {} must be positive",
                self.design_scale
            ));
        }
        self.place_strategy
            .validate()
            .map_err(PipelineError::BadScenario)?;
        Ok(())
    }

    /// The experiment configuration this scenario generates under. The
    /// U-Net depth is shrunk to fit small resolutions so the config always
    /// validates.
    pub fn config(&self) -> ExperimentConfig {
        let base = ExperimentConfig::test();
        ExperimentConfig {
            resolution: self.resolution,
            depth: base
                .depth
                .min(self.resolution.trailing_zeros() as usize)
                .max(1),
            pairs_per_design: self.pairs_per_design,
            design_scale: self.design_scale,
            fabric_slack: 1.0 / self.target_utilization,
            fabric_aspect: self.aspect_ratio,
            seed: self.seed,
            place_strategy: self.place_strategy,
            ..base
        }
    }

    /// Expands the scenario into one [`DesignJob`] per netlist variant.
    /// Variant `v` derives its netlist seed from `(preset seed, scenario
    /// seed, v)`; multi-variant scenarios suffix design names with `-v<v>`
    /// so caches and leave-one-out splits stay distinct.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::validate`] failures.
    pub fn jobs(&self) -> Result<Vec<DesignJob>, PipelineError> {
        self.validate()?;
        let preset = presets::by_name(&self.design).expect("validated above");
        let config = self.config();
        let jobs = (0..self.variants)
            .map(|v| {
                let mut spec = preset.clone();
                spec.mean_fanout = self.mean_fanout;
                spec.locality = self.locality;
                if self.variants > 1 {
                    spec.name = format!("{}-v{v}", preset.name);
                    spec.seed = mix_seed(preset.seed ^ self.seed, v as u64);
                }
                DesignJob {
                    scenario: self.name.clone(),
                    spec,
                    config: config.clone(),
                }
            })
            .collect();
        Ok(jobs)
    }

    /// Total pairs this scenario contributes to a corpus.
    pub fn total_pairs(&self) -> usize {
        self.variants * self.pairs_per_design
    }

    /// Expands the scenario's **held-out evaluation split**: the same
    /// netlist variants as [`ScenarioSpec::jobs`] (the designs are
    /// identical — this is a placement-distribution split, not a design
    /// split), but with the placement-sweep seeds advanced past
    /// `train_epochs` full training epochs and `eval_pairs` placements per
    /// variant. Because [`advance_sweep_seeds`] is the *same* arithmetic
    /// the epoch prefetcher shifts training epochs by, the eval sweep's
    /// seed range `[seed + train_epochs·pairs, …)` is disjoint from every
    /// training epoch's range by construction.
    ///
    /// The shifted `(seed, pairs_per_design)` flow into the cache
    /// fingerprint, so the eval split gets its own `CorpusStore` entries:
    /// a warm re-run regenerates nothing and can never collide with (or be
    /// served from) a training-epoch cache entry.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::validate`] failures; `eval_pairs = 0` is
    /// rejected as a bad scenario.
    pub fn holdout_jobs(
        &self,
        eval_pairs: usize,
        train_epochs: usize,
    ) -> Result<Vec<DesignJob>, PipelineError> {
        if eval_pairs == 0 {
            return Err(PipelineError::BadScenario(
                "holdout eval_pairs must be positive".into(),
            ));
        }
        let mut jobs = self.jobs()?;
        // Shift FIRST (the shift distance is measured in *training*
        // pairs-per-epoch), then resize the sweep to the eval pair count.
        advance_sweep_seeds(&mut jobs, train_epochs);
        for job in &mut jobs {
            job.config.pairs_per_design = eval_pairs;
        }
        Ok(jobs)
    }
}

/// Advances every job's placement-sweep seed past `epochs` full epochs of
/// its scenario's sweep (`seed += epochs · pairs_per_design`) — the one
/// seed-shift arithmetic shared by the epoch prefetcher (training epoch
/// `e` shifts by `e`) and the hold-out split (which shifts past *all*
/// training epochs). Only the sweep seed moves; netlist variant seeds are
/// fixed at expansion time, so every shift re-places the same designs.
pub fn advance_sweep_seeds(jobs: &mut [DesignJob], epochs: usize) {
    for job in jobs {
        job.config.seed = job
            .config
            .seed
            .wrapping_add(epochs as u64 * job.config.pairs_per_design as u64);
    }
}

/// The named scenarios shipped with the pipeline. Each is a starting point:
/// corpora are plain `&[ScenarioSpec]` slices, so callers mix, match and
/// mutate freely.
pub fn registry() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec::default();
    vec![
        // CI-sized end-to-end check: one tiny design, two placements.
        ScenarioSpec {
            name: "smoke".into(),
            design: "diffeq2".into(),
            design_scale: 0.01,
            resolution: 16,
            pairs_per_design: 2,
            ..base.clone()
        },
        // The paper-shaped default.
        base.clone(),
        // Dense fabric: 95 % target utilization → hot congestion maps.
        // The density knob only changes the auto-sized grid once the
        // design (not the minimum viable fabric) drives sizing: at the
        // test-sized default scale every slack value rounds to the same
        // minimal grid and `dense` would silently duplicate `baseline`.
        // At 0.8 the tighter headroom provably shrinks the fabric (the
        // `dense_and_wide_scenarios_produce_distinct_data` test pins it).
        ScenarioSpec {
            name: "dense".into(),
            design_scale: 0.8,
            target_utilization: 0.95,
            ..base.clone()
        },
        // Wide fabric: 2:1 interior aspect stretches channel geometry.
        // Sized like `dense` so the aspect knob shapes a real interior
        // instead of rounding away on the minimal grid.
        ScenarioSpec {
            name: "wide".into(),
            design_scale: 0.8,
            aspect_ratio: 2.0,
            ..base.clone()
        },
        // High-fanout netlists: broadcast-heavy net-degree profile.
        ScenarioSpec {
            name: "highfanout".into(),
            design: "diffeq1".into(),
            mean_fanout: 4.5,
            ..base.clone()
        },
        // Weak locality: long-range nets dominate routing demand.
        ScenarioSpec {
            name: "longrange".into(),
            design: "diffeq1".into(),
            locality: 0.3,
            ..base.clone()
        },
        // Seed-diverse: three netlist variants of one design family.
        ScenarioSpec {
            name: "variants".into(),
            design: "diffeq1".into(),
            variants: 3,
            pairs_per_design: 2,
            ..base
        },
    ]
}

/// Looks up one registry scenario by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    registry()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_scenarios_all_validate_and_resolve() {
        let all = registry();
        assert!(all.len() >= 6);
        for s in &all {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(s.config().validate().is_ok(), "{} config", s.name);
        }
        // Names are unique registry keys.
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(by_name("SMOKE").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        let ok = ScenarioSpec::default();
        assert!(ok.validate().is_ok());
        for mutate in [
            |s: &mut ScenarioSpec| s.design = "nosuch".into(),
            |s: &mut ScenarioSpec| s.resolution = 48,
            |s: &mut ScenarioSpec| s.pairs_per_design = 0,
            |s: &mut ScenarioSpec| s.variants = 0,
            |s: &mut ScenarioSpec| s.target_utilization = 0.0,
            |s: &mut ScenarioSpec| s.target_utilization = 1.5,
            |s: &mut ScenarioSpec| s.aspect_ratio = -1.0,
            |s: &mut ScenarioSpec| s.mean_fanout = 0.5,
            |s: &mut ScenarioSpec| s.locality = 1.5,
            |s: &mut ScenarioSpec| s.design_scale = 0.0,
            |s: &mut ScenarioSpec| {
                s.place_strategy = PlaceStrategy::ParallelRegions {
                    regions: 2,
                    threads: 0,
                }
            },
        ] {
            let mut bad = ok.clone();
            mutate(&mut bad);
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn jobs_expand_variants_with_distinct_names_and_seeds() {
        let scenario = ScenarioSpec {
            variants: 3,
            ..ScenarioSpec::default()
        };
        let jobs = scenario.jobs().unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(scenario.total_pairs(), 12);
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.spec.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 3, "variant seeds must be distinct");
        let mut names: Vec<&str> = jobs.iter().map(|j| j.spec.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3, "variant names must be distinct");
        // Net-degree profile is applied to every variant.
        assert!(jobs.iter().all(|j| j.spec.mean_fanout == 3.0));
        // Single-variant scenarios keep the preset's name and seed so they
        // stay cache-compatible with the classic preset flow.
        let single = ScenarioSpec::default().jobs().unwrap();
        assert_eq!(single[0].spec.name, "diffeq2");
        assert_eq!(
            single[0].spec.seed,
            presets::by_name("diffeq2").unwrap().seed
        );
    }

    #[test]
    fn place_strategy_reaches_the_experiment_config() {
        let s = ScenarioSpec {
            place_strategy: PlaceStrategy::ParallelRegions {
                regions: 3,
                threads: 2,
            },
            ..ScenarioSpec::default()
        };
        assert!(s.validate().is_ok());
        assert_eq!(
            s.config().place_strategy,
            PlaceStrategy::ParallelRegions {
                regions: 3,
                threads: 2
            }
        );
        assert_eq!(
            ScenarioSpec::default().config().place_strategy,
            PlaceStrategy::Sequential
        );
    }

    #[test]
    fn holdout_jobs_shift_sweep_seeds_but_never_the_designs() {
        let scenario = ScenarioSpec {
            variants: 2,
            pairs_per_design: 3,
            ..ScenarioSpec::default()
        };
        let train = scenario.jobs().unwrap();
        let eval = scenario.holdout_jobs(5, 4).unwrap();
        assert_eq!(eval.len(), train.len());
        for (t, e) in train.iter().zip(&eval) {
            // Identical netlists: a placement-distribution split, not a
            // design split.
            assert_eq!(t.spec, e.spec);
            // Sweep seed advanced past 4 epochs of 3 pairs each…
            assert_eq!(e.config.seed, t.config.seed.wrapping_add(12));
            // …and the sweep resized to the eval pair count.
            assert_eq!(e.config.pairs_per_design, 5);
        }
        // The shift matches advance_sweep_seeds (the prefetcher's epoch
        // arithmetic), so eval seeds are provably past every epoch.
        let mut shifted = scenario.jobs().unwrap();
        advance_sweep_seeds(&mut shifted, 4);
        for (s, e) in shifted.iter().zip(&eval) {
            assert_eq!(s.config.seed, e.config.seed);
        }
        // A zero-pair eval split is rejected, not silently empty.
        assert!(matches!(
            scenario.holdout_jobs(0, 1),
            Err(PipelineError::BadScenario(_))
        ));
    }

    #[test]
    fn config_maps_utilization_to_slack_and_aspect() {
        let s = ScenarioSpec {
            target_utilization: 0.5,
            aspect_ratio: 2.0,
            resolution: 16,
            ..ScenarioSpec::default()
        };
        let c = s.config();
        assert!((c.fabric_slack - 2.0).abs() < 1e-12);
        assert_eq!(c.fabric_aspect, 2.0);
        // Depth shrinks to fit the resolution.
        assert!(c.validate().is_ok());
    }
}
