//! The tracing half of the substrate: `span!` guards captured into
//! per-thread ring buffers, aggregated into a parent/child tree with
//! self-time vs child-time attribution — a poor man's flamegraph.
//!
//! Capture is off by default: the global subscriber is a no-op and an
//! inactive [`span!`](crate::span) costs one relaxed atomic load and one
//! branch. [`enable`] turns capture on; each thread then appends finished
//! spans to its own bounded buffer (registered globally on first use), and
//! [`drain`] collects every thread's records for aggregation. Buffers are
//! rings in the back-pressure sense: past [`ring_capacity`] records a
//! thread stops recording and counts drops instead of growing without
//! bound — earlier records (whose parents are complete) are kept.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on records buffered per thread before drops are counted.
const RING_CAPACITY: usize = 1 << 16;

/// Records buffered per thread before further spans are dropped (counted,
/// not silently lost — [`SpanSet::dropped`] reports the total).
pub fn ring_capacity() -> usize {
    RING_CAPACITY
}

/// One finished span, as captured on its thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (`"route_stage"`).
    pub name: &'static str,
    /// Rendered `key=value` fields, empty when none were given.
    pub detail: String,
    /// Span id, unique within one capture session.
    pub id: u64,
    /// Enclosing span's id on the same thread; `0` for thread roots.
    pub parent: u64,
    /// Start offset from the capture epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the capture epoch, nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall-clock duration of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Per-thread capture state: the buffered records plus the open-span stack.
struct ThreadBuffer {
    records: Vec<SpanRecord>,
    dropped: u64,
}

/// Shared handle onto one thread's buffer, registered globally so `drain`
/// can reach buffers of threads that have since exited.
type SharedBuffer = Arc<Mutex<ThreadBuffer>>;

struct Subscriber {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    next_thread: AtomicUsize,
    buffers: Mutex<Vec<SharedBuffer>>,
}

fn subscriber() -> &'static Subscriber {
    static SUBSCRIBER: OnceLock<Subscriber> = OnceLock::new();
    SUBSCRIBER.get_or_init(|| Subscriber {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        next_id: AtomicU64::new(1),
        next_thread: AtomicUsize::new(0),
        buffers: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static LOCAL: RefCell<Option<(SharedBuffer, Vec<u64>)>> = const { RefCell::new(None) };
}

/// Whether span capture is on. The one branch a disabled `span!` pays.
#[inline]
pub fn enabled() -> bool {
    subscriber().enabled.load(Ordering::Relaxed)
}

/// Turns span capture on (idempotent).
pub fn enable() {
    subscriber().enabled.store(true, Ordering::Relaxed);
}

/// Turns span capture off. Already-open spans still record on drop.
pub fn disable() {
    subscriber().enabled.store(false, Ordering::Relaxed);
}

/// Collects (and clears) every thread's captured spans.
pub fn drain() -> SpanSet {
    let sub = subscriber();
    let buffers = sub.buffers.lock().expect("span buffer registry");
    let mut records = Vec::new();
    let mut dropped = 0u64;
    for buf in buffers.iter() {
        let mut buf = buf.lock().expect("span buffer");
        records.append(&mut buf.records);
        dropped += std::mem::take(&mut buf.dropped);
    }
    records.sort_by_key(|r| (r.start_ns, r.id));
    SpanSet { records, dropped }
}

/// An RAII span: created by the [`span!`](crate::span) macro, records its
/// `(name, detail, parent, start, end)` into the thread's buffer on drop.
/// Inactive guards (capture disabled at entry) do nothing.
#[derive(Debug)]
#[must_use = "a span guard measures the scope it lives in"]
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    detail: String,
    id: u64,
    parent: u64,
    start_ns: u64,
}

impl SpanGuard {
    /// Opens a span. `detail_fn` is only invoked when capture is enabled,
    /// so field rendering costs nothing on the disabled path.
    #[inline]
    pub fn enter(name: &'static str, detail_fn: impl FnOnce() -> String) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                active: false,
                name,
                detail: String::new(),
                id: 0,
                parent: 0,
                start_ns: 0,
            };
        }
        let sub = subscriber();
        let id = sub.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            let (_, stack) = local.get_or_insert_with(new_thread_state);
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        SpanGuard {
            active: true,
            name,
            detail: detail_fn(),
            id,
            parent,
            start_ns: sub.epoch.elapsed().as_nanos() as u64,
        }
    }
}

fn new_thread_state() -> (SharedBuffer, Vec<u64>) {
    let sub = subscriber();
    sub.next_thread.fetch_add(1, Ordering::Relaxed);
    let buffer: SharedBuffer = Arc::new(Mutex::new(ThreadBuffer {
        records: Vec::new(),
        dropped: 0,
    }));
    sub.buffers
        .lock()
        .expect("span buffer registry")
        .push(Arc::clone(&buffer));
    (buffer, Vec::new())
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = subscriber().epoch.elapsed().as_nanos() as u64;
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            let (buffer, stack) = local.get_or_insert_with(new_thread_state);
            // Guards drop in LIFO order within a thread, but be tolerant of
            // a guard outliving its scope (moved into a struct): remove by
            // id wherever it is.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
            let mut buf = buffer.lock().expect("span buffer");
            if buf.records.len() >= RING_CAPACITY {
                buf.dropped += 1;
                return;
            }
            buf.records.push(SpanRecord {
                name: self.name,
                detail: std::mem::take(&mut self.detail),
                id: self.id,
                parent: self.parent,
                start_ns: self.start_ns,
                end_ns,
            });
        });
    }
}

/// Opens a [`SpanGuard`] measuring the enclosing scope. The first argument
/// is a static span name; optional `key = value` fields are rendered into
/// the span's detail string **only when capture is enabled**.
///
/// ```
/// let _guard = pop_obs::span!("route_stage", job = 3usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, String::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter($name, || {
            format!(
                concat!($(concat!(stringify!($key), "={} ")),+),
                $($value),+
            )
            .trim_end()
            .to_string()
        })
    };
}

/// Every span captured between [`enable`] and [`drain`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSet {
    /// Captured spans, sorted by start time.
    pub records: Vec<SpanRecord>,
    /// Spans dropped because a thread's ring was full.
    pub dropped: u64,
}

impl SpanSet {
    /// Aggregates the raw records into the parent/child span tree.
    pub fn tree(&self) -> Vec<SpanNode> {
        build_tree(&self.records)
    }
}

/// One aggregated node of the span tree: every captured span with the same
/// name under the same parent path, with self-time vs child-time split out.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Spans aggregated into this node.
    pub count: u64,
    /// Total wall time across those spans, nanoseconds.
    pub total_ns: u64,
    /// Wall time spent in *direct children*, nanoseconds.
    pub child_ns: u64,
    /// Children, ordered by first appearance.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time attributed to this node's own code: total minus children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Depth-first search for a descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Depth-first lookup of `name` anywhere in a forest.
pub fn find_span<'a>(forest: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
    forest.iter().find_map(|n| n.find(name))
}

/// Builds the aggregated tree: records are grouped by their chain of
/// ancestor *names* (so two `route_stage` spans under different `prep`
/// spans aggregate into one node), keeping first-appearance order.
fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total_ns: u64,
        child_ns: u64,
        children: Vec<(String, Agg)>,
    }
    impl Agg {
        fn child(&mut self, name: &str) -> &mut Agg {
            if let Some(pos) = self.children.iter().position(|(n, _)| n == name) {
                &mut self.children[pos].1
            } else {
                self.children.push((name.to_string(), Agg::default()));
                &mut self.children.last_mut().expect("just pushed").1
            }
        }
        fn into_nodes(self) -> Vec<SpanNode> {
            self.children
                .into_iter()
                .map(|(name, agg)| {
                    let (count, total_ns, child_ns) = (agg.count, agg.total_ns, agg.child_ns);
                    SpanNode {
                        name,
                        count,
                        total_ns,
                        child_ns,
                        children: agg.into_nodes(),
                    }
                })
                .collect()
        }
    }

    // Resolve each record's name path by walking parent ids. An id index
    // first; paths memoised per record index.
    let index: std::collections::HashMap<u64, usize> =
        records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    fn path_of(
        i: usize,
        records: &[SpanRecord],
        index: &std::collections::HashMap<u64, usize>,
        memo: &mut Vec<Option<Vec<usize>>>,
    ) -> Vec<usize> {
        if let Some(p) = &memo[i] {
            return p.clone();
        }
        let mut path = match index.get(&records[i].parent) {
            Some(&pi) => path_of(pi, records, index, memo),
            None => Vec::new(),
        };
        path.push(i);
        memo[i] = Some(path.clone());
        path
    }

    let mut memo: Vec<Option<Vec<usize>>> = vec![None; records.len()];
    let mut root = Agg::default();
    for i in 0..records.len() {
        let path = path_of(i, records, &index, &mut memo);
        let mut node = &mut root;
        for &step in &path {
            node = node.child(records[step].name);
        }
        node.count += 1;
        node.total_ns += records[i].duration_ns();
        // Attribute this span's duration to its parent's child time.
        if let Some(&parent_idx) = index.get(&records[i].parent) {
            let parent_path = path_of(parent_idx, records, &index, &mut memo);
            let mut pnode = &mut root;
            for &step in &parent_path {
                pnode = pnode.child(records[step].name);
            }
            pnode.child_ns += records[i].duration_ns();
        }
    }
    root.into_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Span-capture tests share one process-global subscriber; serialise
    // them so drains don't steal each other's records.
    fn capture_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = capture_lock();
        disable();
        let _ = drain();
        {
            let _g = crate::span!("invisible");
        }
        assert!(drain().records.is_empty());
    }

    #[test]
    fn nesting_attributes_self_and_child_time() {
        let _serial = capture_lock();
        let _ = drain();
        enable();
        {
            let _outer = crate::span!("outer");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = crate::span!("inner", step = 1);
                std::thread::sleep(Duration::from_millis(8));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        disable();
        let set = drain();
        assert_eq!(set.records.len(), 2);
        assert_eq!(set.dropped, 0);
        let tree = set.tree();
        assert_eq!(tree.len(), 1, "one root");
        let outer = &tree[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        // The child's wall time is the parent's child time, and self + child
        // reconstruct the parent's total exactly (same two timestamps).
        assert_eq!(outer.child_ns, inner.total_ns);
        assert_eq!(outer.self_ns() + outer.child_ns, outer.total_ns);
        assert!(inner.total_ns >= 8_000_000, "inner >= 8ms");
        assert!(outer.self_ns() >= 6_000_000, "outer self >= 6ms");
        // Field rendering happened.
        let rec = set
            .records
            .iter()
            .find(|r| r.name == "inner")
            .expect("inner captured");
        assert_eq!(rec.detail, "step=1");
        assert!(find_span(&tree, "inner").is_some());
        assert!(find_span(&tree, "nosuch").is_none());
    }

    #[test]
    fn cross_thread_spans_become_their_own_roots() {
        let _serial = capture_lock();
        let _ = drain();
        enable();
        {
            let _main = crate::span!("driver");
            std::thread::spawn(|| {
                let _w = crate::span!("worker_stage");
                std::thread::sleep(Duration::from_millis(1));
            })
            .join()
            .expect("worker thread");
        }
        disable();
        let tree = drain().tree();
        let names: Vec<&str> = tree.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"driver"), "{names:?}");
        assert!(names.contains(&"worker_stage"), "{names:?}");
        // The worker span has no parent on its thread: it is a root, not a
        // child of `driver`.
        assert!(tree
            .iter()
            .find(|n| n.name == "driver")
            .expect("driver root")
            .children
            .is_empty());
    }

    #[test]
    fn same_name_spans_aggregate_by_path() {
        let _serial = capture_lock();
        let _ = drain();
        enable();
        for i in 0..3 {
            let _outer = crate::span!("epoch", index = i);
            let _inner = crate::span!("step");
        }
        disable();
        let tree = drain().tree();
        let epoch = find_span(&tree, "epoch").expect("epoch node");
        assert_eq!(epoch.count, 3);
        assert_eq!(epoch.children.len(), 1);
        assert_eq!(epoch.children[0].count, 3);
    }
}
