//! `pop-obs` — zero-dependency observability substrate for the
//! painting-on-placement workspace.
//!
//! Three pieces, usable separately or together:
//!
//! - **Metrics** ([`metrics`]): a process-global [`Registry`] of named
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed latency [`Histogram`]s.
//!   The record path is lock-free (one atomic RMW); registration and
//!   snapshotting take a mutex on the cold path only. Histograms keep
//!   16 sub-buckets per power of two, so reported p50/p90/p99 overstate
//!   the true quantile by at most 1/16 relative error.
//! - **Spans** ([`span`] module and the [`span!`] macro): RAII guards
//!   recording `(name, fields, parent, start, end)` into per-thread
//!   bounded buffers, aggregated by [`SpanSet::tree`] into a parent/child
//!   forest with self-time vs child-time attribution. Capture is off by
//!   default; a disabled `span!` costs one relaxed load and a branch.
//! - **Reports** ([`report`]): [`RunReport::capture`] bundles the span
//!   forest, a metric snapshot, host parallelism, and wall clock into a
//!   hand-rolled JSON document (parse it back with [`json::parse`]).
//!
//! Typical wiring in a binary:
//!
//! ```
//! use std::time::Instant;
//!
//! let started = Instant::now();
//! pop_obs::enable_tracing();
//! {
//!     let _stage = pop_obs::span!("route_stage", job = 7);
//!     pop_obs::global().counter("pipeline.pairs").inc();
//! }
//! let report = pop_obs::RunReport::capture("demo", started, pop_obs::global());
//! assert!(pop_obs::find_span(&report.spans, "route_stage").is_some());
//! ```

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use report::RunReport;
pub use span::{
    disable as disable_tracing, drain as drain_spans, enable as enable_tracing,
    enabled as tracing_enabled, find_span, SpanGuard, SpanNode, SpanRecord, SpanSet,
};
