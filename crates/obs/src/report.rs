//! The `RunReport`: one JSON document tying a run's span tree, metric
//! snapshot, host parallelism, and wall clock together — the artifact a
//! `--trace-out PATH` flag writes and CI smoke steps parse back.

use crate::json;
use crate::metrics::{MetricsSnapshot, Registry};
use crate::span::{SpanNode, SpanSet};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// A completed run's observability capture.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Free-form run label (binary name, scenario, …).
    pub label: String,
    /// Wall-clock duration of the observed window, milliseconds.
    pub wall_ms: f64,
    /// `std::thread::available_parallelism` at capture time.
    pub host_parallelism: usize,
    /// Aggregated span forest (thread roots at top level).
    pub spans: Vec<SpanNode>,
    /// Spans lost to full per-thread rings (0 in healthy runs).
    pub dropped_spans: u64,
    /// Every registered counter/gauge/histogram, name-sorted.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Captures the current global state: drains all span buffers and
    /// snapshots the given registry. `started` anchors the wall clock —
    /// pass the instant tracing was enabled.
    pub fn capture(label: &str, started: Instant, registry: &Registry) -> RunReport {
        let set: SpanSet = crate::span::drain();
        RunReport {
            label: label.to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            spans: set.tree(),
            dropped_spans: set.dropped,
            metrics: registry.snapshot(),
        }
    }

    /// Serializes the report with the repo's hand-rolled JSON conventions:
    /// deterministic key order, six-decimal floats, two-space indent.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"label\": {},", json::str_lit(&self.label));
        let _ = writeln!(out, "  \"wall_ms\": {},", json::num(self.wall_ms));
        let _ = writeln!(out, "  \"host_parallelism\": {},", self.host_parallelism);
        let _ = writeln!(out, "  \"dropped_spans\": {},", self.dropped_spans);
        out.push_str("  \"spans\": [");
        write_span_forest(&mut out, &self.spans, 2);
        out.push_str("],\n");
        self.write_metrics(&mut out);
        out.push_str("}\n");
        out
    }

    fn write_metrics(&self, out: &mut String) {
        out.push_str("  \"metrics\": {\n");
        out.push_str("    \"counters\": {");
        for (i, (name, value)) in self.metrics.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}      {}: {}", json::str_lit(name), value);
        }
        if !self.metrics.counters.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("},\n");
        out.push_str("    \"gauges\": {");
        for (i, (name, value)) in self.metrics.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}      {}: {}",
                json::str_lit(name),
                json::num(*value)
            );
        }
        if !self.metrics.gauges.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("},\n");
        out.push_str("    \"histograms\": {");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}      {}: {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                json::str_lit(name),
                h.count,
                json::num(h.mean()),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max,
            );
        }
        if !self.metrics.histograms.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n");
        out.push_str("  }\n");
    }

    /// Writes the JSON document to `path`, creating parent directories.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

fn write_span_forest(out: &mut String, forest: &[SpanNode], depth: usize) {
    if forest.is_empty() {
        return;
    }
    let pad = "  ".repeat(depth);
    for (i, node) in forest.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}{pad}  {{\"name\": {}, \"count\": {}, \"total_us\": {}, \"self_us\": {}, \"children\": [",
            json::str_lit(&node.name),
            node.count,
            node.total_ns / 1_000,
            node.self_ns() / 1_000,
        );
        write_span_forest(out, &node.children, depth + 1);
        if !node.children.is_empty() {
            let _ = write!(out, "{pad}  ");
        }
        out.push_str("]}");
    }
    out.push('\n');
    out.push_str(&pad);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::Registry;

    #[test]
    fn report_json_round_trips_through_own_parser() {
        let registry = Registry::new();
        registry.counter("demo.count").add(7);
        registry.gauge("demo.level").set(2.5);
        let h = registry.histogram("demo.latency_us");
        for v in [10, 20, 30] {
            h.record(v);
        }
        let report = RunReport {
            label: "unit \"test\"".to_string(),
            wall_ms: 12.5,
            host_parallelism: 4,
            spans: vec![SpanNode {
                name: "outer".to_string(),
                count: 2,
                total_ns: 5_000_000,
                child_ns: 2_000_000,
                children: vec![SpanNode {
                    name: "inner".to_string(),
                    count: 2,
                    total_ns: 2_000_000,
                    child_ns: 0,
                    children: Vec::new(),
                }],
            }],
            dropped_spans: 0,
            metrics: registry.snapshot(),
        };
        let doc = parse(&report.to_json()).expect("report parses");
        assert_eq!(doc.get("label").unwrap().as_str(), Some("unit \"test\""));
        assert_eq!(doc.get("host_parallelism").unwrap().as_u64(), Some(4));
        let spans = doc.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(spans[0].get("total_us").unwrap().as_u64(), Some(5_000));
        assert_eq!(spans[0].get("self_us").unwrap().as_u64(), Some(3_000));
        let inner = &spans[0].get("children").unwrap().as_array().unwrap()[0];
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("demo.count")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            metrics
                .get("gauges")
                .unwrap()
                .get("demo.level")
                .unwrap()
                .as_f64(),
            Some(2.5)
        );
        let hist = metrics
            .get("histograms")
            .unwrap()
            .get("demo.latency_us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(3));
        assert!(hist.get("p50").unwrap().as_u64().unwrap() >= 20);
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(30));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let registry = Registry::new();
        let report = RunReport {
            label: String::new(),
            wall_ms: 0.0,
            host_parallelism: 1,
            spans: Vec::new(),
            dropped_spans: 0,
            metrics: registry.snapshot(),
        };
        let doc = parse(&report.to_json()).expect("empty report parses");
        assert_eq!(doc.get("spans").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn write_json_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!(
            "pop-obs-report-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let path = dir.join("nested/trace.json");
        let registry = Registry::new();
        let report = RunReport {
            label: "disk".to_string(),
            wall_ms: 1.0,
            host_parallelism: 1,
            spans: Vec::new(),
            dropped_spans: 0,
            metrics: registry.snapshot(),
        };
        report.write_json(&path).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads back");
        assert!(parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
