//! The metrics half of the substrate: named atomic counters, gauges and
//! log-bucketed latency histograms, collected in a [`Registry`].
//!
//! The record path is lock-free: handles are `Arc`s onto plain atomics, so
//! a hot loop pays one `fetch_add` per event. Registration (name → handle)
//! takes a mutex, but it happens once per call site — callers hold the
//! returned handle, not the name. [`Registry::snapshot`] reads everything
//! on demand without stopping writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (bench hygiene; production code never calls this).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (queue depth, current cost,
/// last epoch's loss). Stores `f64` bits in one atomic, so integer and
/// floating measurements share one type.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (lock-free read-modify-write loop; contention on a
    /// gauge is a few threads at most).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Sub-bucket precision of the histogram: each power-of-two range is split
/// into `2^PRECISION_BITS` equal sub-buckets, so any recorded value lands
/// in a bucket whose width is at most `value / 2^PRECISION_BITS` — a
/// bounded ~6 % relative error at 4 bits, sharp enough to gate p99 SLOs.
const PRECISION_BITS: u32 = 4;
const SUB: u64 = 1 << PRECISION_BITS; // sub-buckets per octave
/// `SUB` exact unit buckets + `SUB` sub-buckets per octave above them.
const BUCKETS: usize = (SUB as usize) + (64 - PRECISION_BITS as usize) * SUB as usize;

/// A log-bucketed histogram of `u64` samples (conventionally microseconds).
///
/// Values below `2^PRECISION_BITS` get exact unit buckets; above that,
/// each power-of-two octave is split into `2^PRECISION_BITS` sub-buckets,
/// so the bucket containing any value spans at most a `1/2^PRECISION_BITS`
/// relative range. Recording is one atomic increment plus three counter
/// updates — no locks, no allocation. Percentiles are extracted from the
/// bucket counts on demand ([`HistogramSnapshot::percentile`]), each
/// reported as its bucket's inclusive upper bound, so the reported pXX
/// never understates the true quantile and overstates it by at most one
/// bucket's width.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of `value` (total order, contiguous).
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // 2^exp <= value
    let mantissa = (value >> (exp - PRECISION_BITS)) & (SUB - 1);
    (SUB + (exp - PRECISION_BITS) as u64 * SUB + mantissa) as usize
}

/// Inclusive upper bound of bucket `index` — the value percentiles report.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let group = (index - SUB) / SUB;
    let mantissa = (index - SUB) % SUB;
    let exp = group + u64::from(PRECISION_BITS);
    let width = 1u64 << (exp - u64::from(PRECISION_BITS));
    (1u64 << exp) + mantissa * width + (width - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array element-by-element.
        let buckets: Box<[AtomicU64; BUCKETS]> =
            Box::new(std::array::from_fn(|_| AtomicU64::new(0)));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and summary stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: `snapshot().percentile(p)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Zeroes every bucket and counter.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Frozen view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `p`-quantile (`p` in `[0, 1]`), reported as the inclusive upper
    /// bound of the bucket holding the rank-`⌈p·n⌉` sample — never below
    /// the true quantile, above it by at most one bucket width
    /// (`≤ value / 2^PRECISION_BITS`). Zero for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's bound can exceed the observed max.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (exact — from the running sum, not the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; subsystems that need isolated counters (tests, the
/// serving engine's per-instance stats) can own a private one.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Hold the handle;
    /// recording through it never takes the registration lock again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A consistent-enough point-in-time copy of every metric, sorted by
    /// name (BTreeMap order), so serialisations are deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric in place. Outstanding handles stay
    /// valid (values reset, identity preserved) — bench/test hygiene.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// Frozen view of a [`Registry`], name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The process-wide registry every instrumented subsystem records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            7,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            65_535,
            1 << 40,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: {v} -> {idx}");
            assert!(idx < BUCKETS);
            last = idx;
        }
        // Exact unit buckets below SUB.
        for v in 0..SUB {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for v in [0u64, 5, 16, 100, 12_345, 999_999, 1 << 33] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} must bound {v}");
            // The next bucket starts strictly above this one's bound.
            assert!(bucket_upper(idx + 1) > upper);
            // Relative width is bounded by the precision.
            if v >= SUB {
                assert!(upper - v <= v / SUB + 1, "width at {v}: {}", upper - v);
            }
        }
    }

    #[test]
    fn percentiles_bracket_known_distributions() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        let p50 = snap.percentile(0.50);
        let p99 = snap.percentile(0.99);
        // True quantiles are 500 and 990; the report may overstate by one
        // bucket width (~1/16) and never understate.
        assert!((500..=532).contains(&p50), "p50 {p50}");
        assert!((990..=1053).contains(&p99), "p99 {p99}");
        assert!(snap.percentile(1.0) <= 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_returns_shared_handles_and_snapshots_sorted() {
        let r = Registry::new();
        let a = r.counter("z.late");
        let b = r.counter("z.late");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name -> same counter");
        r.counter("a.early").inc();
        r.gauge("depth").set(4.5);
        r.histogram("lat").record(10);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.early".into(), 1), ("z.late".into(), 3)]
        );
        assert_eq!(snap.gauge("depth"), Some(4.5));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.counter("nosuch"), None);
        r.reset();
        assert_eq!(r.snapshot().counter("z.late"), Some(0));
        assert_eq!(a.get(), 0, "reset preserves handle identity");
    }

    #[test]
    fn gauge_add_accumulates() {
        let g = Gauge::default();
        g.add(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        g.set(7.0);
        assert_eq!(g.get(), 7.0);
    }
}
