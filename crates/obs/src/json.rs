//! Hand-rolled JSON, both directions, with no dependencies.
//!
//! The writer half mirrors the conventions already used by the eval
//! reports ([`str_lit`] escaping, [`num`] six-decimal formatting,
//! deterministic key order is the caller's job). The reader half is a
//! small recursive-descent parser — just enough to let the CI smoke step
//! load a `RunReport` back and assert on its structure without pulling
//! in serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep keys sorted (BTreeMap), which is
/// fine for assertions — we never re-emit parsed documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numbers that round-trip as integers (counts, ids).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// Parses a complete JSON document, requiring it to consume all input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::at(pos, "trailing input"));
    }
    Ok(value)
}

/// Parse failure: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> ParseError {
        ParseError { offset, message }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "invalid literal"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // SAFETY: `bytes` came from a `&str` and `*pos` only ever
                // advances past complete escapes, quotes, or whole UTF-8
                // scalars (`ch.len_utf8()` below), so `rest` starts on a
                // character boundary and is valid UTF-8.
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                // `rest` is non-empty (the `Some(_)` arm), but route the
                // impossible case to a parse error rather than panicking:
                // this parser sits on network-request paths.
                let Some(ch) = s.chars().next() else {
                    return Err(ParseError::at(*pos, "unterminated string"));
                };
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| ParseError::at(start, "invalid number"))
}

/// Writes a JSON string literal with the repo's escaping conventions.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a float with six decimals, `null` for non-finite values —
/// matching the eval report convention.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn writer_output_round_trips() {
        let lit = str_lit("line\nwith \"quotes\" and \\slash\u{1}");
        let v = parse(&lit).expect("own string literal parses");
        assert_eq!(v.as_str(), Some("line\nwith \"quotes\" and \\slash\u{1}"));
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::NAN), "null");
        let parsed = parse(&num(123.456789)).expect("number parses");
        assert!((parsed.as_f64().unwrap() - 123.456789).abs() < 1e-9);
    }

    #[test]
    fn u64_helper_accepts_integral_numbers_only() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
