//! Property and stress tests for the observability substrate: histogram
//! percentiles bracket the true quantile within one bucket's relative
//! error for arbitrary sample sets, counters stay exact under concurrent
//! recording, and span nesting reconstructs wall time from self + child.

use pop_obs::{find_span, Counter, Histogram};
use proptest::prelude::*;
use std::sync::Arc;

/// The histogram's precision contract: 16 sub-buckets per octave, so any
/// reported percentile overstates the true quantile by at most 1/16
/// relative error (plus one for the bucket-bound rounding).
fn bucket_bound(true_quantile: u64) -> u64 {
    true_quantile + true_quantile / 16 + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For an arbitrary sample set, every reported percentile must sit in
    /// `[true_quantile, true_quantile * (1 + 1/16)]` — never understating,
    /// overstating by at most one bucket's width.
    #[test]
    fn percentiles_bracket_true_quantile(
        samples in collection::vec(0u64..2_000_000, 200),
        pct in 1usize..100,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let p = pct as f64 / 100.0;
        // The snapshot reports the rank-⌈p·n⌉ sample's bucket bound.
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_q = sorted[rank - 1];
        let reported = h.snapshot().percentile(p);
        prop_assert!(
            reported >= true_q,
            "p{pct} understated: reported {reported} < true {true_q}"
        );
        prop_assert!(
            reported <= bucket_bound(true_q),
            "p{pct} overstated: reported {reported} > bound {} (true {true_q})",
            bucket_bound(true_q)
        );
    }

    /// The mean comes from an exact running sum, not buckets.
    #[test]
    fn mean_is_exact(samples in collection::vec(0u64..1_000_000, 64)) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let expected = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.snapshot().mean() - expected).abs() < 1e-6);
    }
}

/// Eight threads hammering one counter and one histogram concurrently:
/// totals must be exact — no lost updates on the lock-free record path.
#[test]
fn concurrent_recording_is_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let counter = Arc::new(Counter::default());
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    // Sum of 0..N-1 over all threads: exact under concurrency too.
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.max, n - 1);
    // Bucket counts individually add up to the total.
    let bucketed: u64 = snap.nonzero_buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(bucketed, n);
}

/// Span nesting across three levels: at every level of the aggregated
/// tree, self-time + direct-child time reconstructs wall time exactly
/// (same timestamps on both sides), and measured sleeps show up where
/// they were spent.
#[test]
fn span_nesting_attributes_time_by_level() {
    pop_obs::drain_spans(); // shed records from other tests in this binary
    pop_obs::enable_tracing();
    {
        let _run = pop_obs::span!("prop_run");
        std::thread::sleep(std::time::Duration::from_millis(3));
        for job in 0..2 {
            let _outer = pop_obs::span!("prop_outer", job = job);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = pop_obs::span!("prop_inner");
            std::thread::sleep(std::time::Duration::from_millis(4));
        }
    }
    pop_obs::disable_tracing();
    let set = pop_obs::drain_spans();
    let ours: Vec<_> = set
        .records
        .iter()
        .filter(|r| r.name.starts_with("prop_"))
        .cloned()
        .collect();
    assert_eq!(ours.len(), 5, "1 run + 2 outer + 2 inner");
    let tree = pop_obs::SpanSet {
        records: ours,
        dropped: 0,
    }
    .tree();

    let run = find_span(&tree, "prop_run").expect("run span");
    let outer = find_span(&tree, "prop_outer").expect("outer span");
    let inner = find_span(&tree, "prop_inner").expect("inner span");
    assert_eq!((run.count, outer.count, inner.count), (1, 2, 2));

    // Exact reconstruction at every level: self + child = total.
    for node in [run, outer, inner] {
        assert_eq!(
            node.self_ns() + node.child_ns,
            node.total_ns,
            "{}: self+child must equal total",
            node.name
        );
    }
    // The sleeps land in the level that performed them.
    assert!(run.self_ns() >= 3_000_000, "run self >= 3ms");
    assert!(outer.self_ns() >= 2 * 2_000_000, "outer self >= 2×2ms");
    assert!(inner.self_ns() >= 2 * 4_000_000, "inner self >= 2×4ms");
    // And the parent's total covers everything beneath it.
    assert!(run.total_ns >= run.child_ns);
    assert!(outer.total_ns >= inner.total_ns);
}
