//! Item-level parsing on top of [`crate::lexer`]: functions (with param
//! and return types), impl blocks, traits, struct fields and `use` maps.
//!
//! Still deliberately not a full parser — it recovers the *items* of a
//! file and just enough type surface (head type names) for the call
//! graph's receiver-type heuristics in [`crate::graph`]. Anything it
//! cannot classify it skips; the worst failure mode is a call site the
//! graph over-approximates or counts unresolved, never a crash.

use crate::context::FileCx;
use crate::lexer::{Kind, Tok};

/// One `fn` item: its identity, signature surface and body span.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Target type of the enclosing `impl` block, when this is a method.
    pub self_ty: Option<String>,
    /// Trait being implemented (`impl Trait for Type`) or declared
    /// (default method bodies inside `trait Trait { … }`).
    pub trait_ty: Option<String>,
    /// `(name, head type)` pairs; `self` appears with its impl type.
    pub params: Vec<(String, Option<String>)>,
    /// Head type of the return type, when one is written, after stripping
    /// deref-transparent wrappers (`MutexGuard<'_, T>` → `T`).
    pub ret: Option<String>,
    /// The unstripped head (`MutexGuard` in the example above) — the graph
    /// uses it to spot guard-returning lock helpers.
    pub ret_raw: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `code`-index range of the body `{ … }`, inclusive of both braces.
    /// `None` for bodyless trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` code (or a tests/ benches dir).
    pub is_test: bool,
}

/// A struct (or enum/union) declaration: the name, plus named-field types
/// for structs — the graph uses these to type `self.field` receivers.
#[derive(Debug, Clone)]
pub struct TypeItem {
    pub name: String,
    /// `(field, head type)`; empty for enums, tuple structs and unions.
    pub fields: Vec<(String, Option<String>)>,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
    pub traits: Vec<String>,
    /// `use` alias map: last-segment (or `as`) name → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
}

/// Head-type wrappers that are transparent to method dispatch: a call on
/// `Arc<T>` / `Box<T>` / a guard lands on `T` via auto-deref, and the
/// lock/cell containers expose `T` through their acquire methods (the
/// graph's [`crate::graph`] typing treats `.lock()`-style calls on the
/// stripped payload as identity).
const DEREF_TRANSPARENT: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Ref",
    "RefMut",
];

/// Whether `head` is one of the deref-transparent wrappers whose last
/// generic argument is the payload.
pub fn deref_transparent(head: &str) -> bool {
    DEREF_TRANSPARENT.contains(&head)
}

/// Keywords that can precede `(` without being a call/param context.
pub const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await", "box", "union",
];

/// Parses the file's items. Single forward pass over the code tokens with
/// a scope stack; expression braces inside bodies are tracked only for
/// depth.
pub fn parse(cx: &FileCx) -> FileItems {
    Parser::new(cx).run()
}

struct Parser<'a, 'b> {
    cx: &'a FileCx<'b>,
    /// `(self_ty, trait_ty)` context stack for impl/trait blocks, tagged
    /// with the brace depth they opened at.
    impls: Vec<(Option<String>, Option<String>, usize)>,
    depth: usize,
    out: FileItems,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn new(cx: &'a FileCx<'b>) -> Self {
        Parser {
            cx,
            impls: Vec::new(),
            depth: 0,
            out: FileItems::default(),
        }
    }

    fn tok(&self, pos: usize) -> Option<&Tok> {
        self.cx.code.get(pos).map(|&i| &self.cx.toks[i])
    }

    fn text(&self, pos: usize) -> &str {
        self.tok(pos).map_or("", |t| t.text(&self.cx.file.text))
    }

    fn is_punct(&self, pos: usize, p: &str) -> bool {
        self.tok(pos)
            .is_some_and(|t| t.kind == Kind::Punct && t.text(&self.cx.file.text) == p)
    }

    /// Two adjacent punct bytes (`::`, `->`) with no gap between them.
    fn is_punct2(&self, pos: usize, a: &str, b: &str) -> bool {
        self.is_punct(pos, a)
            && self.is_punct(pos + 1, b)
            && self.tok(pos).map(|t| t.end) == self.tok(pos + 1).map(|t| t.start)
    }

    fn run(mut self) -> FileItems {
        let mut pos = 0usize;
        while pos < self.cx.code.len() {
            let kind = self.tok(pos).map(|t| t.kind);
            let text = self.text(pos).to_string();
            match (kind, text.as_str()) {
                (Some(Kind::Ident), "fn") => pos = self.parse_fn(pos),
                (Some(Kind::Ident), "impl") => pos = self.parse_impl_header(pos),
                (Some(Kind::Ident), "trait") => pos = self.parse_trait_header(pos),
                (Some(Kind::Ident), "struct") | (Some(Kind::Ident), "union") => {
                    pos = self.parse_struct(pos)
                }
                (Some(Kind::Ident), "enum") => pos = self.parse_enum(pos),
                (Some(Kind::Ident), "use") => pos = self.parse_use(pos),
                (Some(Kind::Punct), "{") => {
                    self.depth += 1;
                    pos += 1;
                }
                (Some(Kind::Punct), "}") => {
                    while self.impls.last().is_some_and(|&(_, _, d)| d >= self.depth) {
                        self.impls.pop();
                    }
                    self.depth = self.depth.saturating_sub(1);
                    pos += 1;
                }
                _ => pos += 1,
            }
        }
        self.out
    }

    /// Skips a balanced `<…>` generics run starting at `pos` (which must
    /// sit on `<`). `->` arrows and `>>` closers are handled; returns the
    /// position just past the closing `>`.
    fn skip_generics(&self, mut pos: usize) -> usize {
        debug_assert!(self.is_punct(pos, "<"));
        let mut depth = 0usize;
        while pos < self.cx.code.len() {
            if self.is_punct(pos, "<") {
                depth += 1;
            } else if self.is_punct(pos, ">") {
                // `->` inside a generic `Fn() -> T` bound is not a closer.
                let arrow = pos > 0 && self.is_punct2(pos - 1, "-", ">");
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return pos + 1;
                    }
                }
            } else if self.is_punct(pos, "(") || self.is_punct(pos, "[") {
                pos = self.skip_balanced(pos);
                continue;
            }
            pos += 1;
        }
        pos
    }

    /// Skips a balanced `(…)` / `[…]` / `{…}` group starting at its opener;
    /// returns the position just past the closer.
    fn skip_balanced(&self, start: usize) -> usize {
        let (open, close) = match self.text(start) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return start + 1,
        };
        let mut depth = 0usize;
        let mut pos = start;
        while pos < self.cx.code.len() {
            if self.is_punct(pos, open) {
                depth += 1;
            } else if self.is_punct(pos, close) {
                depth -= 1;
                if depth == 0 {
                    return pos + 1;
                }
            }
            pos += 1;
        }
        pos
    }

    /// Parses a type starting at `pos`, returning its head name (the
    /// workspace-relevant identifier after stripping references, `mut`,
    /// `dyn`/`impl`, and deref-transparent wrappers) and the position just
    /// past the type. Returns `None` for heads we cannot or do not want to
    /// name (tuples, slices, fn pointers, primitives stay `Some` — the
    /// symbol table simply won't know them).
    fn parse_type(&self, mut pos: usize) -> (Option<String>, usize) {
        loop {
            if self.is_punct(pos, "&") || self.is_punct(pos, "*") {
                pos += 1;
                continue;
            }
            match self.tok(pos).map(|t| t.kind) {
                Some(Kind::Lifetime) => {
                    pos += 1;
                    continue;
                }
                Some(Kind::Ident) if matches!(self.text(pos), "mut" | "dyn" | "impl" | "const") => {
                    pos += 1;
                    continue;
                }
                _ => break,
            }
        }
        if self.is_punct(pos, "(") || self.is_punct(pos, "[") {
            // Tuple / slice / array type: no single head.
            return (None, self.skip_balanced(pos));
        }
        if self.tok(pos).map(|t| t.kind) != Some(Kind::Ident) {
            return (None, pos + 1);
        }
        // Walk the path `a::b::C`, remembering the last segment.
        let mut head = self.text(pos).to_string();
        pos += 1;
        while self.is_punct2(pos, ":", ":") {
            pos += 2;
            if self.tok(pos).map(|t| t.kind) == Some(Kind::Ident) {
                head = self.text(pos).to_string();
                pos += 1;
            } else {
                break;
            }
        }
        if self.is_punct(pos, "<") {
            let inner_start = pos + 1;
            pos = self.skip_generics(pos);
            if DEREF_TRANSPARENT.contains(&head.as_str()) {
                // `Arc<Mutex<T>>` → `T`; `MutexGuard<'a, T>` → `T`
                // (lifetimes are skipped, the *last* argument is the
                // payload for every wrapper in the list).
                if let Some(inner) = self.last_generic_arg_head(inner_start, pos - 1) {
                    return (Some(inner), pos);
                }
                return (None, pos);
            }
            if matches!(head.as_str(), "Result" | "Option") {
                // Collapse to the payload: `?` / `.unwrap()` are how these
                // values are consumed, so the *first* argument is what
                // method calls on the result land on.
                let (inner, _) = self.parse_type(inner_start);
                return (inner, pos);
            }
        }
        (Some(head), pos)
    }

    /// Last path identifier of the type at `pos`, before any wrapper
    /// stripping — `std::sync::MutexGuard<…>` → `MutexGuard`.
    fn raw_head(&self, mut pos: usize) -> Option<String> {
        loop {
            if self.is_punct(pos, "&") || self.is_punct(pos, "*") {
                pos += 1;
                continue;
            }
            match self.tok(pos).map(|t| t.kind) {
                Some(Kind::Lifetime) => pos += 1,
                Some(Kind::Ident) if matches!(self.text(pos), "mut" | "dyn" | "impl" | "const") => {
                    pos += 1
                }
                _ => break,
            }
        }
        if self.tok(pos).map(|t| t.kind) != Some(Kind::Ident) {
            return None;
        }
        let mut head = self.text(pos).to_string();
        pos += 1;
        while self.is_punct2(pos, ":", ":") {
            pos += 2;
            if self.tok(pos).map(|t| t.kind) == Some(Kind::Ident) {
                head = self.text(pos).to_string();
                pos += 1;
            } else {
                break;
            }
        }
        Some(head)
    }

    /// Head of the last top-level type argument in `code[[start, end))` —
    /// the payload of a deref-transparent wrapper.
    fn last_generic_arg_head(&self, start: usize, end: usize) -> Option<String> {
        let mut arg_start = start;
        let mut pos = start;
        let mut depth = 0usize;
        while pos < end {
            if self.is_punct(pos, "<") && !(pos > 0 && self.is_punct2(pos - 1, "-", ">")) {
                depth += 1;
            } else if self.is_punct(pos, ">") && !self.is_punct2(pos - 1, "-", ">") {
                depth = depth.saturating_sub(1);
            } else if self.is_punct(pos, "(") || self.is_punct(pos, "[") {
                pos = self.skip_balanced(pos);
                continue;
            } else if self.is_punct(pos, ",") && depth == 0 {
                arg_start = pos + 1;
            }
            pos += 1;
        }
        let (head, _) = self.parse_type(arg_start);
        // Recurse through nested wrappers: `Arc<Arc<T>>`.
        head
    }

    fn parse_fn(&mut self, fn_pos: usize) -> usize {
        let Some(name_tok) = self.tok(fn_pos + 1) else {
            return fn_pos + 1;
        };
        if name_tok.kind != Kind::Ident {
            // `fn(usize) -> T` function-pointer type position.
            return fn_pos + 1;
        }
        let name = name_tok.text(&self.cx.file.text).to_string();
        let line = self.tok(fn_pos).map_or(0, |t| t.line);
        let is_test = self.cx.is_test(self.cx.code[fn_pos]);
        let (self_ty, trait_ty) = self
            .impls
            .last()
            .map(|(s, t, _)| (s.clone(), t.clone()))
            .unwrap_or((None, None));

        let mut pos = fn_pos + 2;
        if self.is_punct(pos, "<") {
            pos = self.skip_generics(pos);
        }
        let mut params = Vec::new();
        if self.is_punct(pos, "(") {
            let close = self.skip_balanced(pos);
            params = self.parse_params(pos + 1, close - 1, self_ty.as_deref());
            pos = close;
        }
        let mut ret = None;
        let mut ret_raw = None;
        if self.is_punct2(pos, "-", ">") {
            ret_raw = self.raw_head(pos + 2);
            let (head, after) = self.parse_type(pos + 2);
            ret = head;
            pos = after;
        }
        // Skip a `where` clause: runs to the body `{` or a `;`.
        while pos < self.cx.code.len() && !self.is_punct(pos, "{") && !self.is_punct(pos, ";") {
            pos += 1;
        }
        let body = if self.is_punct(pos, "{") {
            let end = self.skip_balanced(pos);
            Some((pos, end - 1))
        } else {
            None
        };
        let after = body.map_or(pos + 1, |(_, end)| end + 1);
        self.out.fns.push(FnItem {
            name,
            self_ty,
            trait_ty,
            params,
            ret,
            ret_raw,
            line,
            body,
            is_test,
        });
        after
    }

    /// Parses `code[[start, end))` as a fn parameter list.
    fn parse_params(
        &self,
        start: usize,
        end: usize,
        self_ty: Option<&str>,
    ) -> Vec<(String, Option<String>)> {
        let mut params = Vec::new();
        let mut pos = start;
        // A leading `self` receiver (possibly `&self`, `&mut self`,
        // `self: Arc<Self>`).
        let mut scan = pos;
        while scan < end
            && (self.is_punct(scan, "&")
                || self.tok(scan).map(|t| t.kind) == Some(Kind::Lifetime)
                || self.text(scan) == "mut")
        {
            scan += 1;
        }
        if scan < end && self.text(scan) == "self" {
            params.push(("self".to_string(), self_ty.map(str::to_string)));
            pos = scan + 1;
        }
        // Each further param: `name: Type` at group depth 0.
        let depth = 0usize;
        while pos < end {
            if self.is_punct(pos, "(") || self.is_punct(pos, "[") || self.is_punct(pos, "{") {
                pos = self.skip_balanced(pos);
                continue;
            }
            if self.is_punct(pos, "<") {
                pos = self.skip_generics(pos);
                continue;
            }
            if self.is_punct(pos, ",") && depth == 0 {
                pos += 1;
                continue;
            }
            // `name :` (single colon — `::` is a path) opens a type.
            if self.tok(pos).map(|t| t.kind) == Some(Kind::Ident)
                && self.is_punct(pos + 1, ":")
                && !self.is_punct2(pos + 1, ":", ":")
            {
                let pname = self.text(pos).to_string();
                let (head, after) = self.parse_type(pos + 2);
                if !KEYWORDS.contains(&pname.as_str()) {
                    params.push((pname, head));
                }
                pos = after;
                continue;
            }
            let _ = depth;
            pos += 1;
        }
        params
    }

    fn parse_impl_header(&mut self, impl_pos: usize) -> usize {
        let mut pos = impl_pos + 1;
        if self.is_punct(pos, "<") {
            pos = self.skip_generics(pos);
        }
        let (first, after) = self.parse_type(pos);
        pos = after;
        let (self_ty, trait_ty) = if self.text(pos) == "for" {
            let (target, after) = self.parse_type(pos + 1);
            pos = after;
            (target, first)
        } else {
            (first, None)
        };
        // Run to the opening brace (skipping any `where` clause).
        while pos < self.cx.code.len() && !self.is_punct(pos, "{") && !self.is_punct(pos, ";") {
            pos += 1;
        }
        if self.is_punct(pos, "{") {
            self.depth += 1;
            self.impls.push((self_ty, trait_ty, self.depth));
            return pos + 1;
        }
        pos + 1
    }

    fn parse_trait_header(&mut self, trait_pos: usize) -> usize {
        let Some(name_tok) = self.tok(trait_pos + 1) else {
            return trait_pos + 1;
        };
        if name_tok.kind != Kind::Ident {
            return trait_pos + 1;
        }
        let name = name_tok.text(&self.cx.file.text).to_string();
        self.out.traits.push(name.clone());
        let mut pos = trait_pos + 2;
        while pos < self.cx.code.len() && !self.is_punct(pos, "{") && !self.is_punct(pos, ";") {
            if self.is_punct(pos, "<") {
                pos = self.skip_generics(pos);
                continue;
            }
            pos += 1;
        }
        if self.is_punct(pos, "{") {
            self.depth += 1;
            self.impls.push((None, Some(name), self.depth));
            return pos + 1;
        }
        pos + 1
    }

    fn parse_struct(&mut self, struct_pos: usize) -> usize {
        let Some(name_tok) = self.tok(struct_pos + 1) else {
            return struct_pos + 1;
        };
        if name_tok.kind != Kind::Ident {
            return struct_pos + 1;
        }
        let name = name_tok.text(&self.cx.file.text).to_string();
        let mut pos = struct_pos + 2;
        if self.is_punct(pos, "<") {
            pos = self.skip_generics(pos);
        }
        while pos < self.cx.code.len()
            && !self.is_punct(pos, "{")
            && !self.is_punct(pos, ";")
            && !self.is_punct(pos, "(")
        {
            pos += 1;
        }
        let mut fields = Vec::new();
        if self.is_punct(pos, "{") {
            let close = self.skip_balanced(pos);
            let mut p = pos + 1;
            while p < close - 1 {
                if self.tok(p).map(|t| t.kind) == Some(Kind::Ident)
                    && self.is_punct(p + 1, ":")
                    && !self.is_punct2(p + 1, ":", ":")
                {
                    let fname = self.text(p).to_string();
                    let (head, after) = self.parse_type(p + 2);
                    if !KEYWORDS.contains(&fname.as_str()) {
                        fields.push((fname, head));
                    }
                    // Run to the field-separating comma at depth 0.
                    p = after;
                    let mut d = 0usize;
                    while p < close - 1 {
                        if self.is_punct(p, "<") && !self.is_punct2(p.wrapping_sub(1), "-", ">") {
                            d += 1;
                        } else if self.is_punct(p, ">") {
                            d = d.saturating_sub(1);
                        } else if self.is_punct(p, "(") || self.is_punct(p, "[") {
                            p = self.skip_balanced(p);
                            continue;
                        } else if self.is_punct(p, ",") && d == 0 {
                            break;
                        }
                        p += 1;
                    }
                }
                p += 1;
            }
            self.out.types.push(TypeItem { name, fields });
            return close;
        }
        if self.is_punct(pos, "(") {
            // Tuple struct: fields are positional, skip them.
            let close = self.skip_balanced(pos);
            self.out.types.push(TypeItem { name, fields });
            return close;
        }
        self.out.types.push(TypeItem { name, fields });
        pos + 1
    }

    fn parse_enum(&mut self, enum_pos: usize) -> usize {
        let Some(name_tok) = self.tok(enum_pos + 1) else {
            return enum_pos + 1;
        };
        if name_tok.kind != Kind::Ident {
            return enum_pos + 1;
        }
        let name = name_tok.text(&self.cx.file.text).to_string();
        self.out.types.push(TypeItem {
            name,
            fields: Vec::new(),
        });
        let mut pos = enum_pos + 2;
        if self.is_punct(pos, "<") {
            pos = self.skip_generics(pos);
        }
        while pos < self.cx.code.len() && !self.is_punct(pos, "{") && !self.is_punct(pos, ";") {
            pos += 1;
        }
        if self.is_punct(pos, "{") {
            return self.skip_balanced(pos);
        }
        pos + 1
    }

    fn parse_use(&mut self, use_pos: usize) -> usize {
        // Only statement-position `use` (the FileCx already computed this).
        if !self.cx.is_use(self.cx.code[use_pos]) {
            return use_pos + 1;
        }
        let mut end = use_pos + 1;
        while end < self.cx.code.len() && !self.is_punct(end, ";") {
            end += 1;
        }
        let mut prefix = Vec::new();
        self.collect_use_tree(use_pos + 1, end, &mut prefix);
        end + 1
    }

    /// Recursively expands `a::b::{c, d as e}` into alias entries.
    fn collect_use_tree(&mut self, start: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_in = prefix.len();
        let mut aliased = false;
        let mut pos = start;
        while pos < end {
            match (self.tok(pos).map(|t| t.kind), self.text(pos)) {
                (Some(Kind::Ident), "as") => {
                    if let Some(alias_tok) = self.tok(pos + 1) {
                        if alias_tok.kind == Kind::Ident {
                            let alias = alias_tok.text(&self.cx.file.text).to_string();
                            self.out.uses.push((alias, prefix.clone()));
                            // `as` renames: the original last segment gets
                            // no default alias of its own.
                            aliased = true;
                            pos += 2;
                            continue;
                        }
                    }
                    pos += 1;
                }
                (Some(Kind::Ident), "self") => {
                    // `use a::b::{self, c}` — `self` aliases `b`.
                    if let Some(last) = prefix.last().cloned() {
                        self.out.uses.push((last, prefix.clone()));
                    }
                    aliased = true;
                    pos += 1;
                }
                (Some(Kind::Ident), seg) => {
                    prefix.push(seg.to_string());
                    pos += 1;
                }
                (Some(Kind::Punct), ":") => pos += 1,
                (Some(Kind::Punct), "{") => {
                    let close = self.skip_balanced(pos);
                    let sub = prefix.clone();
                    self.collect_use_group(pos + 1, close - 1, &sub);
                    // The group terminates this branch.
                    while prefix.len() > depth_in {
                        prefix.pop();
                    }
                    pos = close;
                }
                (Some(Kind::Punct), "*") => {
                    // Glob import: record under the reserved `*` alias.
                    self.out.uses.push(("*".to_string(), prefix.clone()));
                    pos += 1;
                }
                _ => pos += 1,
            }
        }
        // A plain `use a::b::c;` aliases `c`.
        if !aliased && prefix.len() > depth_in {
            if let Some(last) = prefix.last() {
                if last != "*" {
                    self.out.uses.push((last.clone(), prefix.clone()));
                }
            }
            while prefix.len() > depth_in {
                prefix.pop();
            }
        }
    }

    /// Splits a `{…}` use-group body on top-level commas and recurses.
    fn collect_use_group(&mut self, start: usize, end: usize, prefix: &[String]) {
        let mut item_start = start;
        let mut pos = start;
        while pos <= end {
            let at_end = pos == end;
            if at_end || self.is_punct(pos, ",") {
                if item_start < pos {
                    let mut sub = prefix.to_vec();
                    self.collect_use_tree(item_start, pos, &mut sub);
                }
                item_start = pos + 1;
            } else if self.is_punct(pos, "{") {
                pos = self.skip_balanced(pos);
                continue;
            }
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;

    fn parse_src(src: &str) -> FileItems {
        let file = SourceFile::new("crates/x/src/lib.rs", src);
        let cx = FileCx::new(&file);
        parse(&cx)
    }

    #[test]
    fn free_fn_with_params_and_return() {
        let items = parse_src("pub fn load(config: &ExperimentConfig, path: &Path) -> Model {}");
        assert_eq!(items.fns.len(), 1);
        let f = &items.fns[0];
        assert_eq!(f.name, "load");
        assert_eq!(f.self_ty, None);
        assert_eq!(
            f.params,
            vec![
                ("config".into(), Some("ExperimentConfig".into())),
                ("path".into(), Some("Path".into())),
            ]
        );
        assert_eq!(f.ret.as_deref(), Some("Model"));
        assert!(f.body.is_some());
    }

    #[test]
    fn inherent_and_trait_methods_carry_their_impl_context() {
        let items = parse_src(
            "impl Engine {\n  fn start(&self) {}\n}\nimpl Drop for Engine {\n  fn drop(&mut self) {}\n}",
        );
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("Engine"));
        assert_eq!(items.fns[0].trait_ty, None);
        assert_eq!(
            items.fns[0].params[0],
            ("self".into(), Some("Engine".into()))
        );
        assert_eq!(items.fns[1].self_ty.as_deref(), Some("Engine"));
        assert_eq!(items.fns[1].trait_ty.as_deref(), Some("Drop"));
    }

    #[test]
    fn generic_impls_and_wrappers_normalize_to_head_types() {
        let items = parse_src(
            "impl<T: Send> BoundedQueue<T> {\n  fn push(&self, x: T) -> Result<(), PushError<T>> {}\n}\nfn share(m: Arc<Mutex<Pix2Pix>>, g: MutexGuard<'_, Pix2Pix>) {}",
        );
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("BoundedQueue"));
        // `Result<(), …>` collapses to its payload — a tuple, so no head.
        assert_eq!(items.fns[0].ret, None);
        let share = &items.fns[1];
        assert_eq!(share.params[0].1.as_deref(), Some("Pix2Pix"));
        assert_eq!(share.params[1].1.as_deref(), Some("Pix2Pix"));
    }

    #[test]
    fn struct_fields_are_typed_enums_are_named() {
        let items = parse_src(
            "struct Registry {\n  capacity: usize,\n  inner: Mutex<RegistryInner>,\n  map: HashMap<PathBuf, Entry>,\n}\nenum Mode { A, B(usize) }",
        );
        let s = &items.types[0];
        assert_eq!(s.name, "Registry");
        assert_eq!(
            s.fields,
            vec![
                ("capacity".into(), Some("usize".into())),
                ("inner".into(), Some("RegistryInner".into())),
                ("map".into(), Some("HashMap".into())),
            ]
        );
        assert_eq!(items.types[1].name, "Mode");
        assert!(items.types[1].fields.is_empty());
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let items = parse_src(
            "use pop_core::{model_io, ExperimentConfig as Cfg, features::tensor_to_image};\nuse pop_exec::*;\nuse std::sync::Mutex;",
        );
        let find = |alias: &str| {
            items
                .uses
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(find("model_io").as_deref(), Some("pop_core::model_io"));
        assert_eq!(find("Cfg").as_deref(), Some("pop_core::ExperimentConfig"));
        assert_eq!(
            find("tensor_to_image").as_deref(),
            Some("pop_core::features::tensor_to_image")
        );
        assert_eq!(find("*").as_deref(), Some("pop_exec"));
        assert_eq!(find("Mutex").as_deref(), Some("std::sync::Mutex"));
    }

    #[test]
    fn trait_decls_record_default_method_context() {
        let items = parse_src(
            "pub trait Forecaster {\n  fn forecast(&self, x: &Tensor) -> Tensor;\n  fn forecast_image(&self, x: &Tensor) -> Image { decode(self.forecast(x)) }\n}",
        );
        assert_eq!(items.traits, vec!["Forecaster".to_string()]);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].trait_ty.as_deref(), Some("Forecaster"));
        assert!(items.fns[0].body.is_none());
        assert!(items.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = parse_src("fn real(cb: fn(usize) -> bool) {}");
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn test_fns_are_marked() {
        let items = parse_src("#[test]\nfn unit() {}\nfn live() {}");
        assert!(items.fns[0].is_test);
        assert!(!items.fns[1].is_test);
    }

    #[test]
    fn bodies_span_the_braces() {
        let src = "fn a() { inner(); }\nfn b() {}";
        let file = SourceFile::new("crates/x/src/lib.rs", src);
        let cx = FileCx::new(&file);
        let items = parse(&cx);
        let (open, close) = items.fns[0].body.unwrap();
        assert_eq!(cx.toks[cx.code[open]].text(src), "{");
        assert_eq!(cx.toks[cx.code[close]].text(src), "}");
        // `inner` sits inside fn a's body span.
        let inner = cx
            .code
            .iter()
            .position(|&i| cx.toks[i].text(src) == "inner")
            .unwrap();
        assert!(open < inner && inner < close);
    }
}
