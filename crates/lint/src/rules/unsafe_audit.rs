//! Unsafe audit: every `unsafe` block/fn/impl in non-test code must carry
//! a `// SAFETY:` comment and appear in the committed `UNSAFE_INVENTORY.md`.
//!
//! The inventory is regenerated on every run and diffed against the
//! committed file, so a new `unsafe` site (or a deleted one that leaves a
//! stale entry) fails the lint until the inventory is re-committed — a
//! forced review point for every change to the workspace's unsafe surface.

use crate::context::FileCx;
use crate::lexer::Kind;
use crate::report::Finding;

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit
/// (doc comments and attributes in between are common).
const SAFETY_WINDOW: u32 = 6;

/// One `unsafe` site, in inventory form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    pub context: String,
    /// First line of the SAFETY comment, or empty when undocumented.
    pub summary: String,
}

impl UnsafeSite {
    /// The committed-inventory form. Deliberately line-number-free so the
    /// inventory doesn't churn on unrelated edits.
    pub fn entry(&self) -> String {
        format!("{} · {} · {}", self.file, self.context, self.summary)
    }
}

/// Collects the file's unsafe sites and flags undocumented ones.
pub fn check(cx: &FileCx, out: &mut Vec<Finding>, sites: &mut Vec<UnsafeSite>) {
    for (pos, &i) in cx.code.iter().enumerate() {
        let tok = &cx.toks[i];
        if tok.kind != Kind::Ident || cx.text(tok) != "unsafe" || cx.is_test(i) {
            continue;
        }
        // What kind of site is it? (purely for the inventory context)
        let next = cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n]));
        let flavor = match next {
            Some("impl") => "unsafe impl",
            Some("fn") => "unsafe fn",
            Some("{") => "unsafe block",
            _ => "unsafe",
        };
        let context = match cx.enclosing_fn(i) {
            Some(f) => format!("{flavor} in {f}"),
            None => flavor.to_string(),
        };
        let summary = safety_summary(cx, i);
        if summary.is_empty() {
            out.push(Finding::new(
                "unsafe_doc",
                &cx.file.rel_path,
                tok.line,
                cx.enclosing_fn(i),
                "`unsafe` without a `// SAFETY:` comment on or above it",
            ));
        }
        sites.push(UnsafeSite {
            file: cx.file.rel_path.clone(),
            line: tok.line,
            context,
            summary,
        });
    }
    // Duplicate inventory entries (two blocks in one fn) get ordinals so
    // the committed file stays a set.
    disambiguate(sites);
}

/// Finds the `SAFETY:` comment covering the `unsafe` token at `toks[i]`:
/// a comment on the same line or within [`SAFETY_WINDOW`] lines above.
fn safety_summary(cx: &FileCx, i: usize) -> String {
    let unsafe_line = cx.toks[i].line;
    let mut best = String::new();
    for tok in &cx.toks {
        if tok.line > unsafe_line {
            break;
        }
        if !matches!(tok.kind, Kind::LineComment | Kind::BlockComment) {
            continue;
        }
        if tok.line + SAFETY_WINDOW < unsafe_line {
            continue;
        }
        let text = cx.text(tok);
        if let Some(at) = text.find("SAFETY:") {
            let rest = &text[at + "SAFETY:".len()..];
            let first_line = rest.lines().next().unwrap_or("").trim();
            let first_line = first_line.trim_end_matches("*/").trim();
            best = first_line.to_string();
            if best.is_empty() {
                // `// SAFETY:` with the prose on the next comment line.
                best = "(see source)".to_string();
            }
        }
    }
    best
}

fn disambiguate(sites: &mut [UnsafeSite]) {
    for idx in 0..sites.len() {
        let entry = sites[idx].entry();
        let nth = sites[..idx].iter().filter(|s| s.entry() == entry).count();
        if nth > 0 {
            sites[idx].summary = format!("{} [{}]", sites[idx].summary, nth + 1);
        }
    }
}

/// Diffs regenerated entries against the committed inventory lines.
pub fn diff_inventory(sites: &[UnsafeSite], committed: &[String], out: &mut Vec<Finding>) {
    let fresh: Vec<String> = sites.iter().map(UnsafeSite::entry).collect();
    for site in sites {
        if !committed.contains(&site.entry()) {
            out.push(Finding::new(
                "unsafe_inventory",
                &site.file,
                site.line,
                None,
                format!(
                    "unsafe site not in UNSAFE_INVENTORY.md (`{}`); review it and rerun with --write-inventories",
                    site.entry()
                ),
            ));
        }
    }
    for (n, entry) in committed.iter().enumerate() {
        if !fresh.contains(entry) {
            out.push(Finding::new(
                "unsafe_inventory",
                "UNSAFE_INVENTORY.md",
                (n + 1) as u32,
                None,
                format!("stale inventory entry `{entry}` matches no unsafe site; rerun with --write-inventories"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;

    fn run(src: &str) -> (Vec<Finding>, Vec<UnsafeSite>) {
        let file = SourceFile::new("crates/x/src/lib.rs", src);
        let cx = FileCx::new(&file);
        let mut out = Vec::new();
        let mut sites = Vec::new();
        check(&cx, &mut out, &mut sites);
        (out, sites)
    }

    #[test]
    fn undocumented_unsafe_fires_and_is_inventoried() {
        let (out, sites) = run("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unsafe_doc");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].context, "unsafe block in f");
        assert!(sites[0].summary.is_empty());
    }

    #[test]
    fn near_miss_documented_unsafe_is_clean() {
        let (out, sites) = run(
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}",
        );
        assert!(out.is_empty());
        assert_eq!(sites[0].summary, "caller guarantees p is valid for reads.");
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        let src = format!(
            "// SAFETY: way up here.{}\nfn f(p: *const u8) -> u8 {{ unsafe {{ *p }} }}",
            "\n".repeat(SAFETY_WINDOW as usize + 2)
        );
        let (out, _) = run(&src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unsafe_in_test_code_is_ignored() {
        let (out, sites) =
            run("#[cfg(test)]\nmod tests {\n  fn t(p: *const u8) -> u8 { unsafe { *p } }\n}");
        assert!(out.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn unsafe_impl_site_is_classified_and_duplicates_get_ordinals() {
        let (_, sites) = run(
            "// SAFETY: raw pointer never aliases.\nunsafe impl Send for P {}\n// SAFETY: raw pointer never aliases.\nunsafe impl Sync for P {}\n",
        );
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].context, "unsafe impl");
        assert_ne!(sites[0].entry(), sites[1].entry());
        assert!(sites[1].summary.ends_with("[2]"));
    }

    #[test]
    fn inventory_diff_flags_missing_and_stale() {
        let (_, sites) = run("fn f() { unsafe { op() } }");
        let committed = vec!["crates/gone/src/old.rs · unsafe block in g · old".to_string()];
        let mut out = Vec::new();
        diff_inventory(&sites, &committed, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .any(|f| f.message.contains("not in UNSAFE_INVENTORY")));
        assert!(out
            .iter()
            .any(|f| f.message.contains("stale inventory entry")));
    }
}
