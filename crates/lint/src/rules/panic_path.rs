//! Panic-path lints for serve request handling and exec queue hot paths.
//!
//! A worker thread that panics takes its queue (and every in-flight
//! request parked on it) down with it, so the serve request path and the
//! exec queue/pool internals may not use panicking idioms:
//! `.unwrap()` / `.expect()` (including the `_err` variants), the panic
//! macro family, or `container[index]` sugar. Poisoned-mutex recovery is
//! `lock().unwrap_or_else(|e| e.into_inner())`; fallible lookups use
//! `.get()`. Startup-only panics (thread spawn, replica construction)
//! carry `// lint: allow(panic_path)` and are inventoried.

use crate::context::{AllowLedger, FileCx};
use crate::lexer::Kind;
use crate::report::Finding;
use crate::LintConfig;

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede `[` without forming an index
/// expression (`return [a, b]`, `match x { .. } [..]` can't occur, etc.).
const NON_INDEX_KEYWORDS: [&str; 30] = [
    "let", "mut", "ref", "return", "in", "if", "else", "match", "loop", "while", "for", "move",
    "static", "yield", "async", "await", "dyn", "impl", "where", "unsafe", "break", "continue",
    "as", "use", "pub", "crate", "enum", "struct", "trait", "type",
];

pub fn check(cx: &FileCx, cfg: &LintConfig, ledger: &mut AllowLedger, out: &mut Vec<Finding>) {
    if !cfg.in_panic_scope(&cx.file.rel_path) {
        return;
    }
    let rule = "panic_path";
    for (pos, &i) in cx.code.iter().enumerate() {
        if cx.is_test(i) {
            continue;
        }
        let tok = &cx.toks[i];
        let text = cx.text(tok);
        let prev = pos.checked_sub(1).map(|p| cx.text(&cx.toks[cx.code[p]]));
        let next = cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n]));

        // `.unwrap()` / `.expect(` method calls.
        if tok.kind == Kind::Ident
            && PANIC_METHODS.contains(&text)
            && prev == Some(".")
            && next == Some("(")
        {
            if !ledger.suppresses(rule, tok.line) {
                out.push(Finding::new(
                    rule,
                    &cx.file.rel_path,
                    tok.line,
                    cx.enclosing_fn(i),
                    format!(
                        "`.{text}()` on a hot path; recover (`unwrap_or_else`) or route the error"
                    ),
                ));
            }
            continue;
        }

        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if tok.kind == Kind::Ident && PANIC_MACROS.contains(&text) && next == Some("!") {
            if !ledger.suppresses(rule, tok.line) {
                out.push(Finding::new(
                    rule,
                    &cx.file.rel_path,
                    tok.line,
                    cx.enclosing_fn(i),
                    format!("`{text}!` on a hot path; return an error instead"),
                ));
            }
            continue;
        }

        // `container[index]` sugar: `[` after an expression tail.
        if tok.kind == Kind::Punct && text == "[" {
            let indexes_expr = match prev {
                Some(")") | Some("]") => true,
                Some(p) => {
                    let prev_tok = &cx.toks[cx.code[pos - 1]];
                    prev_tok.kind == Kind::Ident
                        && !NON_INDEX_KEYWORDS.contains(&p)
                        // `name![…]` macro invocations and `#[…]` attributes
                        // never index; neither does a turbofish-free path tail
                        // followed by `[` in type position, which the
                        // keyword list above already covers in practice.
                        && next != Some("]")
                }
                None => false,
            };
            // `#[attr]` and `name![…]` are handled by prev: `#` / `!` are
            // Punct, not Ident, so indexes_expr is already false there.
            if indexes_expr && !ledger.suppresses(rule, tok.line) {
                out.push(Finding::new(
                    rule,
                    &cx.file.rel_path,
                    tok.line,
                    cx.enclosing_fn(i),
                    "indexing sugar can panic on a hot path; use `.get()`",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;
    use crate::LintConfig;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let cx = FileCx::new(&file);
        let mut ledger = AllowLedger::new(&cx.allows);
        let mut out = Vec::new();
        check(&cx, &LintConfig::workspace(), &mut ledger, &mut out);
        out
    }

    const SCOPED: &str = "crates/serve/src/engine.rs";

    #[test]
    fn unwrap_and_expect_fire() {
        let out = run(
            SCOPED,
            "fn handle(&self) { self.inner.lock().unwrap(); self.q.pop().expect(\"boom\"); }",
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "panic_path"));
        assert_eq!(out[0].context, "handle");
    }

    #[test]
    fn panic_macros_and_indexing_fire() {
        let out = run(
            SCOPED,
            "fn pop(&self, i: usize) { if i > 9 { panic!(\"bad\"); } let x = self.slots[i]; }",
        );
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("panic!"));
        assert!(out[1].message.contains("indexing"));
    }

    #[test]
    fn near_miss_recovery_idioms_do_not_fire() {
        let out = run(
            SCOPED,
            r#"fn handle(&self) {
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                let v = self.slots.get(3);
                let arr = [0u8; 4];
                let v2 = vec![1, 2];
                drop((g, v, arr, v2));
            }"#,
        );
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }

    #[test]
    fn near_miss_out_of_scope_and_test_code_are_silent() {
        assert!(run(
            "crates/place/src/anneal.rs",
            "fn f(v: &[u32]) { v.first().unwrap(); }"
        )
        .is_empty());
        assert!(run(
            SCOPED,
            "#[test]\nfn t() { let v: Vec<u32> = vec![]; v.first().unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_startup_panics() {
        let out = run(
            SCOPED,
            "fn start() {\n  // lint: allow(panic_path) — startup, documented # Panics\n  spawn().expect(\"spawn failed\");\n}",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn attributes_and_slice_types_do_not_fire_as_indexing() {
        let out = run(
            SCOPED,
            "#[derive(Debug)]\nstruct S;\nfn f(x: &[u8], m: [f32; 2]) -> Vec<[u8; 2]> { let _ = (x, m); vec![] }",
        );
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }
}
