//! Transitive panic-path analysis for serve request handling and exec
//! queue hot paths.
//!
//! A worker thread that panics takes its queue (and every in-flight
//! request parked on it) down with it. The roots are every fn defined in
//! [`crate::LintConfig::panic_files`]; anything they reach through the
//! workspace call graph may not use panicking idioms: `.unwrap()` /
//! `.expect()` (including the `_err` variants) or the panic macro
//! family. Poisoned-mutex recovery is
//! `lock().unwrap_or_else(|e| e.into_inner())`; fallible lookups use
//! `.get()`.
//!
//! `container[index]` sugar is held to the tighter standard only inside
//! the panic-scoped files themselves. The kernels the handlers reach
//! (`pop-nn` convolutions, tensor accessors) index by construction —
//! shapes are validated at model load — and rewriting their inner loops
//! to `.get()` would trade a provable invariant for branch pressure, so
//! transitive reach does not flag indexing outside the scope.
//!
//! Two escape hatches, both deliberate:
//!
//! * edges inside a `catch_unwind(…)` argument are not traversed — the
//!   worker converts a caught forward-pass panic into per-request errors,
//!   so the model stack below the shield is out of scope; a fn whose
//!   every precise workspace caller shields it is not a root either, even
//!   when it is defined in a panic-scoped file;
//! * startup-only panics (thread spawn, replica construction) carry
//!   `// lint: allow(panic_path)` with a rationale and are inventoried.

use crate::context::AllowLedger;
use crate::graph::{CallGraph, Verdict};
use crate::report::Finding;
use crate::symtab::FnId;
use crate::LintConfig;
use std::collections::BTreeMap;

pub fn check(
    g: &CallGraph,
    cfg: &LintConfig,
    ledgers: &mut [(String, AllowLedger)],
    out: &mut Vec<Finding>,
) {
    // Precise incoming edges per fn: (total, shielded). Approx edges are
    // ignored here — a name-collision caller must not re-rootify a fn
    // that is really only entered through a shield.
    let mut precise_in: BTreeMap<FnId, (usize, usize)> = BTreeMap::new();
    for node in &g.nodes {
        for call in &node.calls {
            if call.verdict != Verdict::Precise {
                continue;
            }
            for &t in &call.targets {
                let e = precise_in.entry(t).or_insert((0, 0));
                e.0 += 1;
                if call.shielded {
                    e.1 += 1;
                }
            }
        }
    }
    let roots: Vec<FnId> = g
        .tab
        .fns
        .iter()
        .enumerate()
        .filter(|(id, def)| {
            if !cfg.in_panic_scope(&def.file) {
                return false;
            }
            match precise_in.get(id) {
                Some(&(total, shielded)) => total == 0 || shielded < total,
                None => true,
            }
        })
        .map(|(id, _)| id)
        .collect();
    let rule = "panic_path";
    let parents = g.reachable(&roots, true);
    for &id in parents.keys() {
        let def = &g.tab.fns[id];
        let node = &g.nodes[id];
        if node.facts.panic_sites.is_empty() {
            continue;
        }
        let chain = g.chain(&parents, id);
        let root = chain.first().cloned().unwrap_or_default();
        let display = def.display();
        let ledger = &mut ledgers[def.file_idx].1;
        let in_scope = cfg.in_panic_scope(&def.file);
        for s in &node.facts.panic_sites {
            if s.what.contains("indexing") && !in_scope {
                continue;
            }
            if ledger.suppresses(rule, s.line) {
                continue;
            }
            let hint = if s.what.contains("indexing") {
                "use `.get()`"
            } else if s.what.contains('!') {
                "return an error instead"
            } else {
                "recover (`unwrap_or_else`) or route the error"
            };
            let msg = if chain.len() > 1 {
                format!("{} reachable from hot-path root `{root}`; {hint}", s.what)
            } else {
                format!("{} on a hot path; {hint}", s.what)
            };
            out.push(
                Finding::new(rule, &def.file, s.line, Some(&display), msg)
                    .with_chain(chain.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileCx, SourceFile};
    use crate::parser::{self, FileItems};
    use crate::symtab::SymTab;
    use crate::LintConfig;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        let cxs: Vec<FileCx> = sources.iter().map(FileCx::new).collect();
        let mut ledgers: Vec<(String, AllowLedger)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), AllowLedger::new(&cx.allows)))
            .collect();
        let parsed: Vec<(String, FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), parser::parse(cx)))
            .collect();
        let tab = SymTab::build(&parsed);
        let g = CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace());
        let mut out = Vec::new();
        check(&g, &LintConfig::workspace(), &mut ledgers, &mut out);
        out
    }

    const SCOPED: &str = "crates/serve/src/engine.rs";

    #[test]
    fn unwrap_expect_macros_and_indexing_fire() {
        let out = run(&[(
            SCOPED,
            "impl Engine {\n  fn handle(&self, i: usize) {\n    self.q.pop().expect(\"boom\");\n    if i > 9 { panic!(\"bad\"); }\n    let x = self.slots[i];\n  }\n}",
        )]);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "panic_path"));
        assert_eq!(out[0].context, "Engine::handle");
    }

    #[test]
    fn two_hop_unwrap_outside_scope_fires_with_chain() {
        // The panic lives in core — out of the old file-scoped rule's
        // reach — but a serve handler calls into it.
        let out = run(&[
            (
                SCOPED,
                "use pop_core::features::risky_decode;\nimpl Engine {\n  pub fn handle(&self) { risky_decode(7); }\n}",
            ),
            (
                "crates/core/src/features.rs",
                "pub fn risky_decode(x: usize) -> usize { inner(x) }\nfn inner(x: usize) -> usize { SOME.get(x).unwrap() }",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/core/src/features.rs");
        assert_eq!(
            out[0].chain,
            vec!["Engine::handle", "risky_decode", "inner"]
        );
        assert!(out[0].message.contains("hot-path root `Engine::handle`"));
    }

    #[test]
    fn near_miss_indexing_in_a_reached_kernel_is_silent() {
        // Explicit panics travel, indexing does not: kernels index by
        // construction and stay out of the transitive net.
        let out = run(&[
            (
                SCOPED,
                "use pop_nn::conv::dot;\nimpl Engine {\n  pub fn handle(&self) { dot(7); }\n}",
            ),
            (
                "crates/nn/src/conv.rs",
                "pub fn dot(x: usize) -> f32 { KERNEL[x] }",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn near_miss_shielded_forward_and_its_callee_are_silent() {
        // `catch_unwind` converts a forward panic into an error: neither
        // the shielded edge nor the shield-only callee may fire.
        let out = run(&[(
            SCOPED,
            "impl Replica {\n  fn run(&self) { let r = std::panic::catch_unwind(|| self.step()); consume(r); }\n  fn step(&self) { self.x.unwrap(); }\n}\nfn consume(r: usize) {}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn near_miss_recovery_idioms_do_not_fire() {
        let out = run(&[(
            SCOPED,
            r#"fn handle(q: Q) {
                let g = inner.lock().unwrap_or_else(|e| e.into_inner());
                let v = slots.get(3);
                let arr = [0u8; 4];
                let v2 = vec![1, 2];
                drop((g, v, arr, v2));
            }
            struct Q;"#,
        )]);
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }

    #[test]
    fn near_miss_out_of_scope_and_test_code_are_silent() {
        assert!(run(&[(
            "crates/place/src/anneal.rs",
            "fn f(v: &[u32]) { v.first().unwrap(); }"
        )])
        .is_empty());
        assert!(run(&[(
            SCOPED,
            "#[test]\nfn t() { let v: Vec<u32> = vec![]; v.first().unwrap(); }"
        )])
        .is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_startup_panics() {
        let out = run(&[(
            SCOPED,
            "fn start() {\n  // lint: allow(panic_path) — startup, documented # Panics\n  spawn().expect(\"spawn failed\");\n}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn attributes_and_slice_types_do_not_fire_as_indexing() {
        let out = run(&[(
            SCOPED,
            "#[derive(Debug)]\nstruct S;\nfn f(x: &[u8], m: [f32; 2]) -> Vec<[u8; 2]> { let _ = (x, m); vec![] }",
        )]);
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }
}
