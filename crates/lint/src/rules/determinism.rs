//! Determinism taint: reachability from fingerprint/checksum roots.
//!
//! Cache fingerprints (`core::dataset::fingerprint`, the eval baseline
//! checksums) must be pure functions of their inputs: a wall-clock read
//! folded into an FNV accumulator, or a `HashMap` iterated while hashing,
//! silently forks the cache key across runs. The roots are every fn named
//! in [`crate::LintConfig::determinism_roots`] plus any fn that folds a
//! `Fnv1a` accumulator; anything they reach (through the workspace call
//! graph, shields included — a caught panic does not un-read a clock) may
//! not mention `Instant`/`SystemTime` (`wall_clock`) or
//! `HashMap`/`HashSet` (`map_order`), except where an explicit
//! `// lint: allow(wall_clock)` records intentional provenance/timing.

use crate::context::AllowLedger;
use crate::graph::CallGraph;
use crate::report::Finding;
use crate::symtab::FnId;
use crate::LintConfig;

pub fn check(
    g: &CallGraph,
    cfg: &LintConfig,
    ledgers: &mut [(String, AllowLedger)],
    out: &mut Vec<Finding>,
) {
    let roots: Vec<FnId> = g
        .tab
        .fns
        .iter()
        .enumerate()
        .filter(|(id, def)| {
            cfg.determinism_roots.contains(&def.item.name) || g.nodes[*id].facts.uses_fnv
        })
        .map(|(id, _)| id)
        .collect();
    let parents = g.reachable(&roots, false);
    for &id in parents.keys() {
        let def = &g.tab.fns[id];
        let node = &g.nodes[id];
        if node.facts.wall_clock.is_empty() && node.facts.map_order.is_empty() {
            continue;
        }
        let chain = g.chain(&parents, id);
        let root = chain.first().cloned().unwrap_or_default();
        let display = def.display();
        let ledger = &mut ledgers[def.file_idx].1;
        for (sites, rule, what) in [
            (&node.facts.wall_clock, "wall_clock", "wall-clock source"),
            (
                &node.facts.map_order,
                "map_order",
                "iteration-order-sensitive collection",
            ),
        ] {
            for s in sites {
                if ledger.suppresses(rule, s.line) {
                    continue;
                }
                let msg = if chain.len() > 1 {
                    format!(
                        "{what} {} reachable from determinism root `{root}`; fingerprints must be pure functions of their inputs",
                        s.what
                    )
                } else {
                    format!(
                        "{what} {} in determinism root `{root}`; fingerprints must be pure functions of their inputs",
                        s.what
                    )
                };
                out.push(
                    Finding::new(rule, &def.file, s.line, Some(&display), msg)
                        .with_chain(chain.clone()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileCx, SourceFile};
    use crate::graph::CallGraph;
    use crate::parser::{self, FileItems};
    use crate::symtab::SymTab;
    use crate::LintConfig;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        let cxs: Vec<FileCx> = sources.iter().map(FileCx::new).collect();
        let mut ledgers: Vec<(String, AllowLedger)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), AllowLedger::new(&cx.allows)))
            .collect();
        let parsed: Vec<(String, FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), parser::parse(cx)))
            .collect();
        let tab = SymTab::build(&parsed);
        let g = CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace());
        let mut out = Vec::new();
        check(&g, &LintConfig::workspace(), &mut ledgers, &mut out);
        out
    }

    const SCOPED: &str = "crates/core/src/dataset.rs";

    #[test]
    fn wall_clock_in_fingerprint_root_fires() {
        let out = run(&[(
            SCOPED,
            "pub fn fingerprint() -> u64 { let t = std::time::Instant::now(); 0 }",
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wall_clock");
        assert_eq!(out[0].context, "fingerprint");
        assert_eq!(out[0].chain, vec!["fingerprint"]);
    }

    #[test]
    fn hashmap_reachable_two_hops_from_fnv_fold_fires_with_chain() {
        let out = run(&[
            (
                SCOPED,
                "pub fn digest() -> u64 { let h = Fnv1a::new(); helper(); 0 }\n\
                 fn helper() { deep(); }",
            ),
            (
                "crates/core/src/baseline.rs",
                "pub fn deep() { let m: std::collections::HashMap<u32, u32> = Default::default(); }",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "map_order");
        assert_eq!(out[0].file, "crates/core/src/baseline.rs");
        assert_eq!(out[0].chain, vec!["digest", "helper", "deep"]);
        assert!(out[0].message.contains("reachable from determinism root"));
    }

    #[test]
    fn near_miss_unreachable_helper_is_silent() {
        // An `Instant` in a fn nothing fingerprint-rooted calls is fine —
        // even in a file that used to be blanket-scoped.
        let out = run(&[(
            SCOPED,
            "pub fn fingerprint() -> u64 { 0 }\n\
             pub fn stamp() { let t = std::time::Instant::now(); use1(t); }\n\
             fn use1(t: usize) {}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn near_miss_test_code_and_imports_are_silent() {
        let out = run(&[(
            SCOPED,
            "use std::time::Instant;\npub fn fingerprint() -> u64 { 0 }\n#[cfg(test)]\nmod tests {\n  fn t() { let x = Instant::now(); }\n}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_annotation_suppresses_at_the_fact_site() {
        let out = run(&[(
            SCOPED,
            "pub fn fingerprint() -> u64 {\n  // lint: allow(wall_clock) — provenance stamp\n  let t = std::time::SystemTime::now();\n  0\n}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
