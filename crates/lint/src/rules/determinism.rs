//! Determinism lints for fingerprint/checksum/cache-key code.
//!
//! Cache fingerprints (`core::dataset::fingerprint`, the eval baseline
//! checksums, pipeline reassembly) must be pure functions of their
//! inputs: a wall-clock read folded into an FNV accumulator, or a
//! `HashMap` iterated while hashing, silently forks the cache key across
//! runs. Files in the determinism scope therefore may not mention
//! `Instant`/`SystemTime` (`wall_clock`) or `HashMap`/`HashSet`
//! (`map_order`) outside test code, except where an explicit
//! `// lint: allow(wall_clock)` records intentional provenance/timing.

use crate::context::{AllowLedger, FileCx};
use crate::report::Finding;
use crate::LintConfig;

const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const ORDER_SENSITIVE_TYPES: [&str; 2] = ["HashMap", "HashSet"];

pub fn check(cx: &FileCx, cfg: &LintConfig, ledger: &mut AllowLedger, out: &mut Vec<Finding>) {
    if !cfg.in_determinism_scope(&cx.file.rel_path) {
        return;
    }
    for &i in &cx.code {
        if cx.is_test(i) || cx.is_use(i) {
            continue;
        }
        let tok = &cx.toks[i];
        if tok.kind != crate::lexer::Kind::Ident {
            continue;
        }
        let name = cx.text(tok);
        let rule = if WALL_CLOCK_TYPES.contains(&name) {
            "wall_clock"
        } else if ORDER_SENSITIVE_TYPES.contains(&name) {
            "map_order"
        } else {
            continue;
        };
        if ledger.suppresses(rule, tok.line) {
            continue;
        }
        let what = if rule == "wall_clock" {
            "wall-clock source"
        } else {
            "iteration-order-sensitive collection"
        };
        out.push(Finding::new(
            rule,
            &cx.file.rel_path,
            tok.line,
            cx.enclosing_fn(i),
            format!("{what} `{name}` in fingerprint-scoped file; fingerprints must be pure functions of their inputs"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;
    use crate::LintConfig;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let cx = FileCx::new(&file);
        let mut ledger = AllowLedger::new(&cx.allows);
        let mut out = Vec::new();
        check(&cx, &LintConfig::workspace(), &mut ledger, &mut out);
        out
    }

    const SCOPED: &str = "crates/core/src/dataset.rs";

    #[test]
    fn wall_clock_in_fingerprint_file_fires() {
        let out = run(
            SCOPED,
            "fn fingerprint() -> u64 { let t = std::time::Instant::now(); 0 }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wall_clock");
        assert_eq!(out[0].context, "fingerprint");
    }

    #[test]
    fn hashmap_in_fingerprint_file_fires() {
        let out = run(
            SCOPED,
            "fn fold() { let m: std::collections::HashMap<u32, u32> = Default::default(); }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "map_order");
    }

    #[test]
    fn near_miss_out_of_scope_file_is_silent() {
        let out = run(
            "crates/place/src/anneal.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn near_miss_test_code_and_imports_are_silent() {
        let out = run(
            SCOPED,
            "use std::time::Instant;\n#[cfg(test)]\nmod tests {\n  fn t() { let x = Instant::now(); }\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_and_comment_mentions_do_not_fire() {
        let out = run(
            SCOPED,
            "// Instant is fine in prose.\nfn claim() {\n  // lint: allow(wall_clock) — provenance stamp\n  let t = std::time::SystemTime::now();\n}\n",
        );
        assert!(out.is_empty());
    }
}
