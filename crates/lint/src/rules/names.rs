//! Metric/span name registry.
//!
//! Every `Registry::counter`/`gauge`/`histogram` name literal and every
//! `span!` name literal in the workspace is extracted and checked against
//! the committed `OBS_NAMES.md` — the canonical observability surface. A
//! typo'd name (`pipline.jobs`) therefore fails the lint instead of
//! silently forking a metric; a deleted metric leaves a stale inventory
//! entry that fails the lint until the inventory is regenerated.
//!
//! Names built with `format!` templates (`exec.pool.{name}.park_us`) are
//! normalized to glob form (`exec.pool.*.park_us`): a `*` in the
//! inventory matches one or more non-dot characters at that position.

use crate::context::{AllowLedger, FileCx};
use crate::lexer::Kind;
use crate::report::Finding;
use crate::LintConfig;

const METRIC_METHODS: [&str; 3] = ["counter", "gauge", "histogram"];

/// One extracted observability name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObsName {
    /// `counter` / `gauge` / `histogram` / `span`.
    pub kind: String,
    /// Concrete name or `*`-glob template.
    pub name: String,
    pub file: String,
    pub line: u32,
}

impl ObsName {
    pub fn entry(&self) -> String {
        format!("{} {}", self.kind, self.name)
    }
}

/// Extracts the file's metric/span names.
pub fn extract(cx: &FileCx, cfg: &LintConfig, names: &mut Vec<ObsName>) {
    if !cfg.in_names_scope(&cx.file.rel_path) {
        return;
    }
    for (pos, &i) in cx.code.iter().enumerate() {
        if cx.is_test(i) {
            continue;
        }
        let tok = &cx.toks[i];
        if tok.kind != Kind::Ident {
            continue;
        }
        let text = cx.text(tok);
        let prev = pos.checked_sub(1).map(|p| cx.text(&cx.toks[cx.code[p]]));
        let next = cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n]));
        let kind = if METRIC_METHODS.contains(&text) && prev == Some(".") && next == Some("(") {
            text
        } else if text == "span" && next == Some("!") {
            "span"
        } else {
            continue;
        };
        if let Some((name, line)) = first_string_in_call(cx, pos) {
            names.push(ObsName {
                kind: kind.to_string(),
                name: normalize(&name),
                file: cx.file.rel_path.clone(),
                line,
            });
        }
    }
}

/// Finds the first string literal inside the parens opened at/after
/// `code[pos]`, scanning balanced up to the matching close.
fn first_string_in_call(cx: &FileCx, pos: usize) -> Option<(String, u32)> {
    let mut d = pos;
    // Walk to the opening paren (skips the `!` of `span!(`).
    while d < cx.code.len() && cx.text(&cx.toks[cx.code[d]]) != "(" {
        d += 1;
    }
    let mut depth = 0usize;
    while d < cx.code.len() {
        let tok = &cx.toks[cx.code[d]];
        match (tok.kind, cx.text(tok)) {
            (Kind::Punct, "(") | (Kind::Punct, "[") | (Kind::Punct, "{") => depth += 1,
            (Kind::Punct, ")") | (Kind::Punct, "]") | (Kind::Punct, "}") => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            (Kind::Str, raw) => {
                return Some((string_body(raw), tok.line));
            }
            _ => {}
        }
        d += 1;
    }
    None
}

/// Strips quotes/prefix from a string literal's source text. Escapes are
/// left as-is: metric names are plain dotted idents, never escaped.
fn string_body(raw: &str) -> String {
    let start = raw.find('"').map(|q| q + 1).unwrap_or(0);
    let end = raw.rfind('"').unwrap_or(raw.len());
    if start <= end {
        raw[start..end].to_string()
    } else {
        String::new()
    }
}

/// Replaces `{…}` format captures with `*`.
fn normalize(name: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Whether inventory `pattern` covers `name`: equal, or glob `*` segments
/// matching one-or-more non-dot characters.
fn covers(pattern: &str, name: &str) -> bool {
    if pattern == name {
        return true;
    }
    glob_match(pattern.as_bytes(), name.as_bytes())
}

fn glob_match(pat: &[u8], s: &[u8]) -> bool {
    match pat.first() {
        None => s.is_empty(),
        Some(b'*') => {
            // One or more non-dot bytes.
            for take in 1..=s.len() {
                if s[take - 1] == b'.' {
                    break;
                }
                if glob_match(&pat[1..], &s[take..]) {
                    return true;
                }
            }
            false
        }
        Some(&c) => s.first() == Some(&c) && glob_match(&pat[1..], &s[1..]),
    }
}

/// Checks extracted names against the committed inventory lines
/// (`counter pipeline.jobs` form) and flags stale entries.
pub fn diff_inventory(
    names: &[ObsName],
    committed: &[String],
    ledger_lookup: &mut dyn FnMut(&str, u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for n in names {
        let covered = committed.iter().any(|c| match c.split_once(' ') {
            Some((kind, pattern)) => kind == n.kind && covers(pattern, &n.name),
            None => false,
        });
        if !covered && !ledger_lookup(&n.file, n.line) {
            out.push(Finding::new(
                "obs_name",
                &n.file,
                n.line,
                None,
                format!(
                    "{} name `{}` not in OBS_NAMES.md; fix the typo or add it with --write-inventories",
                    n.kind, n.name
                ),
            ));
        }
    }
    for (idx, entry) in committed.iter().enumerate() {
        let live = names.iter().any(|n| match entry.split_once(' ') {
            Some((kind, pattern)) => kind == n.kind && covers(pattern, &n.name),
            None => false,
        });
        if !live {
            out.push(Finding::new(
                "obs_name",
                "OBS_NAMES.md",
                (idx + 1) as u32,
                None,
                format!("stale inventory entry `{entry}` matches no emission site; rerun with --write-inventories"),
            ));
        }
    }
}

/// Regenerates the inventory: templates plus concrete names no template
/// covers, deduplicated and sorted.
pub fn regenerate(names: &[ObsName]) -> Vec<String> {
    let mut entries: Vec<String> = Vec::new();
    let templates: Vec<&ObsName> = names.iter().filter(|n| n.name.contains('*')).collect();
    for n in names {
        if !n.name.contains('*')
            && templates
                .iter()
                .any(|t| t.kind == n.kind && covers(&t.name, &n.name))
        {
            continue;
        }
        let entry = n.entry();
        if !entries.contains(&entry) {
            entries.push(entry);
        }
    }
    entries.sort();
    entries
}

/// Site-level suppression adapter so `diff_inventory` can honour
/// `// lint: allow(obs_name)` through the per-file ledgers.
pub fn ledger_adapter<'a>(
    ledgers: &'a mut [(String, AllowLedger)],
) -> impl FnMut(&str, u32) -> bool + 'a {
    move |file: &str, line: u32| {
        ledgers
            .iter_mut()
            .find(|(f, _)| f == file)
            .is_some_and(|(_, l)| l.suppresses("obs_name", line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;
    use crate::LintConfig;

    fn extract_from(path: &str, src: &str) -> Vec<ObsName> {
        let file = SourceFile::new(path, src);
        let cx = FileCx::new(&file);
        let mut names = Vec::new();
        extract(&cx, &LintConfig::workspace(), &mut names);
        names
    }

    #[test]
    fn metric_calls_and_span_macros_are_extracted() {
        let names = extract_from(
            "crates/pipeline/src/run.rs",
            r#"fn f(reg: &Registry) {
                reg.counter("pipeline.jobs").add(1);
                reg.gauge("exec.queue.depth").set(3);
                let _h = reg.histogram("place.temp_us");
                let _s = span!("place_stage", reg);
            }"#,
        );
        let entries: Vec<String> = names.iter().map(ObsName::entry).collect();
        assert_eq!(
            entries,
            vec![
                "counter pipeline.jobs",
                "gauge exec.queue.depth",
                "histogram place.temp_us",
                "span place_stage",
            ]
        );
    }

    #[test]
    fn format_templates_normalize_to_globs() {
        let names = extract_from(
            "crates/exec/src/pool.rs",
            r#"fn f(reg: &Registry, name: &str) {
                reg.histogram(&format!("exec.pool.{name}.park_us")).record(1);
            }"#,
        );
        assert_eq!(names[0].name, "exec.pool.*.park_us");
    }

    #[test]
    fn near_miss_excluded_crates_and_test_code_are_skipped() {
        assert!(extract_from(
            "crates/obs/src/metrics.rs",
            r#"fn f(reg: &Registry) { reg.counter("throwaway").add(1); }"#
        )
        .is_empty());
        assert!(extract_from(
            "crates/pipeline/src/run.rs",
            r#"#[test]
            fn t() { reg.counter("test.only").add(1); }"#
        )
        .is_empty());
    }

    #[test]
    fn glob_star_matches_one_segment_only() {
        assert!(covers("exec.pool.*.park_us", "exec.pool.anneal.park_us"));
        assert!(!covers("exec.pool.*.park_us", "exec.pool.a.b.park_us"));
        assert!(!covers("exec.pool.*.park_us", "exec.pool..park_us"));
        assert!(covers("pipeline.jobs", "pipeline.jobs"));
        assert!(!covers("pipeline.jobs", "pipeline.pairs"));
    }

    #[test]
    fn diff_flags_unknown_names_and_stale_entries() {
        let names = vec![ObsName {
            kind: "counter".into(),
            name: "pipline.jobs".into(), // typo'd on purpose
            file: "crates/pipeline/src/run.rs".into(),
            line: 12,
        }];
        let committed = vec!["counter pipeline.jobs".to_string()];
        let mut out = Vec::new();
        diff_inventory(&names, &committed, &mut |_, _| false, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("pipline.jobs"));
        assert!(out[1].message.contains("stale inventory entry"));
    }

    #[test]
    fn stale_glob_template_is_flagged() {
        // Deleting the last `exec.pool.<name>` emission site must strand
        // the template entry — unrelated live names (even of the same
        // kind) may not keep the glob alive.
        let names = vec![ObsName {
            kind: "histogram".into(),
            name: "serve.batch_us".into(),
            file: "crates/serve/src/engine.rs".into(),
            line: 7,
        }];
        let committed = vec![
            "histogram exec.pool.*.park_us".to_string(),
            "histogram serve.batch_us".to_string(),
        ];
        let mut out = Vec::new();
        diff_inventory(&names, &committed, &mut |_, _| false, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("stale inventory entry"));
        assert!(out[0].message.contains("exec.pool.*.park_us"));
        assert_eq!(out[0].line, 1, "points at the template's inventory line");
    }

    #[test]
    fn regenerate_folds_concretes_into_templates() {
        let mk = |kind: &str, name: &str| ObsName {
            kind: kind.into(),
            name: name.into(),
            file: "f".into(),
            line: 1,
        };
        let names = vec![
            mk("histogram", "exec.pool.*.park_us"),
            mk("histogram", "exec.pool.anneal.park_us"),
            mk("counter", "pipeline.jobs"),
            mk("counter", "pipeline.jobs"),
        ];
        assert_eq!(
            regenerate(&names),
            vec!["counter pipeline.jobs", "histogram exec.pool.*.park_us"]
        );
    }
}
