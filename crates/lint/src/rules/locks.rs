//! Lock-order check for `pop-exec` and `pop-serve`.
//!
//! Mutex acquisition sites (`….lock()`) are recorded per function.
//! Receivers map to canonical lock names through a small alias table
//! (e.g. `self.inner` in `serve/src/registry.rs` is
//! `serve.registry.inner`), and nested acquisitions are checked against
//! the declared outer→inner order in [`crate::LintConfig::lock_order`].
//! An inversion — or a nested acquisition involving a lock the order
//! doesn't declare, or re-locking a lock already held — is a deadlock
//! waiting for the right interleaving, and fires `lock_order`.
//!
//! Guard liveness is approximated without an AST: a `let`-bound guard
//! lives until its enclosing block closes or an explicit `drop(name)`;
//! a temporary guard (`self.inner.lock().…;`) lives to the end of its
//! statement.

use crate::context::{AllowLedger, FileCx};
use crate::lexer::Kind;
use crate::report::Finding;
use crate::LintConfig;

/// A currently-held guard during the scan.
struct Held {
    canonical: String,
    line: u32,
    /// `let`-bound name, if any (enables `drop(name)` release).
    bound: Option<String>,
    /// Brace depth at acquisition; a `}` closing below this releases it.
    depth: usize,
    /// Temporaries die at the next `;`.
    temp: bool,
}

pub fn check(cx: &FileCx, cfg: &LintConfig, ledger: &mut AllowLedger, out: &mut Vec<Finding>) {
    if !cfg.in_lock_scope(&cx.file.rel_path) {
        return;
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut current_fn: Option<u32> = None;
    for (pos, &i) in cx.code.iter().enumerate() {
        let tok = &cx.toks[i];
        // Reset at function boundaries: held guards never cross fns.
        let fn_id = cx.fn_id(i);
        if fn_id != current_fn {
            current_fn = fn_id;
            held.clear();
        }
        if cx.is_test(i) {
            continue;
        }
        match (tok.kind, cx.text(tok)) {
            (Kind::Punct, "{") => depth += 1,
            (Kind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            }
            (Kind::Punct, ";") => held.retain(|h| !h.temp),
            (Kind::Ident, "drop") => {
                // `drop(name)` releases a bound guard early.
                if let (Some("("), Some(arg), Some(")")) = (
                    cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n])),
                    cx.code.get(pos + 2).map(|&n| cx.text(&cx.toks[n])),
                    cx.code.get(pos + 3).map(|&n| cx.text(&cx.toks[n])),
                ) {
                    held.retain(|h| h.bound.as_deref() != Some(arg));
                }
            }
            (Kind::Ident, "lock") => {
                let prev = pos.checked_sub(1).map(|p| cx.text(&cx.toks[cx.code[p]]));
                let next = cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n]));
                let next2 = cx.code.get(pos + 2).map(|&n| cx.text(&cx.toks[n]));
                if prev != Some(".") || next != Some("(") || next2 != Some(")") {
                    continue;
                }
                let receiver = receiver_chain(cx, pos - 1);
                let canonical = cfg.canonical_lock(&cx.file.rel_path, &receiver);
                for h in &held {
                    let verdict = order_verdict(cfg, &h.canonical, &canonical);
                    if let Some(msg) = verdict {
                        if !ledger.suppresses("lock_order", tok.line) {
                            out.push(Finding::new(
                                "lock_order",
                                &cx.file.rel_path,
                                tok.line,
                                cx.enclosing_fn(i),
                                format!("{msg} (holding `{}` since line {})", h.canonical, h.line),
                            ));
                        }
                    }
                }
                let bound = let_binding(cx, pos);
                held.push(Held {
                    canonical,
                    line: tok.line,
                    temp: bound.is_none(),
                    bound,
                    depth,
                });
            }
            _ => {}
        }
    }
}

/// Cross-function lock-order check on the call graph: a call made while
/// holding a lock is charged with every lock its (transitive) callees
/// acquire, and the held→acquired pair is checked against the declared
/// order — catching an inversion split across two fns, which the
/// intra-fn scan above cannot see.
///
/// Only `Precise` call edges participate: an over-approximated
/// name-match edge would manufacture deadlock reports between unrelated
/// types. Guards acquired *at* the checked call site itself (a
/// guard-returning helper like `SharedForecaster::lock`) are skipped —
/// the acquisition and the call are the same event, not a nesting.
pub fn check_cross(
    g: &crate::graph::CallGraph,
    cfg: &LintConfig,
    ledgers: &mut [(String, AllowLedger)],
    out: &mut Vec<Finding>,
) {
    use std::collections::BTreeMap;
    let n = g.tab.fns.len();
    // Transitive acquisitions per fn: canonical → (direct acquirer, line).
    let mut trans: Vec<BTreeMap<String, (usize, u32)>> = (0..n)
        .map(|id| {
            g.nodes[id]
                .facts
                .lock_acquires
                .iter()
                .map(|(name, line)| (name.clone(), (id, *line)))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..n {
            let mut add: Vec<(String, (usize, u32))> = Vec::new();
            for call in &g.nodes[f].calls {
                if call.verdict != crate::graph::Verdict::Precise {
                    continue;
                }
                for &t in &call.targets {
                    for (name, site) in &trans[t] {
                        if !trans[f].contains_key(name) {
                            add.push((name.clone(), *site));
                        }
                    }
                }
            }
            for (name, site) in add {
                if trans[f].insert(name, site).is_none() {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut seen: std::collections::BTreeSet<(String, u32, String, String)> =
        std::collections::BTreeSet::new();
    for f in 0..n {
        let def = &g.tab.fns[f];
        for call in &g.nodes[f].calls {
            if call.verdict != crate::graph::Verdict::Precise || call.held.is_empty() {
                continue;
            }
            for &t in &call.targets {
                for (acq, &(owner, oline)) in &trans[t] {
                    for (held, hline) in &call.held {
                        if *hline == call.line {
                            continue; // acquired at this very call
                        }
                        let Some(msg) = order_verdict(cfg, held, acq) else {
                            continue;
                        };
                        if !seen.insert((def.file.clone(), call.line, held.clone(), acq.clone()))
                            || ledgers[def.file_idx].1.suppresses("lock_order", call.line)
                        {
                            continue;
                        }
                        let owner_def = &g.tab.fns[owner];
                        let parents = g.reachable(&[t], false);
                        let mut chain = vec![def.display()];
                        chain.extend(g.chain(&parents, owner));
                        out.push(
                            Finding::new(
                                "lock_order",
                                &def.file,
                                call.line,
                                Some(&def.display()),
                                format!(
                                    "{msg} (holding `{held}` since line {hline}; `{acq}` acquired in `{}` at {}:{oline})",
                                    owner_def.display(),
                                    owner_def.file
                                ),
                            )
                            .with_chain(chain),
                        );
                    }
                }
            }
        }
    }
}

pub(crate) fn order_verdict(cfg: &LintConfig, holding: &str, acquiring: &str) -> Option<String> {
    if holding == acquiring {
        return Some(format!("re-entrant acquisition of `{acquiring}`"));
    }
    let idx = |name: &str| cfg.lock_order.iter().position(|l| l == name);
    match (idx(holding), idx(acquiring)) {
        (Some(h), Some(a)) if h > a => Some(format!(
            "acquiring `{acquiring}` while holding `{holding}` inverts the declared lock order"
        )),
        (Some(_), Some(_)) => None,
        _ => Some(format!(
            "nested acquisition involving undeclared lock (`{holding}` → `{acquiring}`); declare both in the lock order"
        )),
    }
}

/// The dotted receiver chain ending at the `.` before `lock`, e.g.
/// `self.inner` for `self.inner.lock()`. Call results (`registry().lock()`)
/// reduce to the called name.
pub(crate) fn receiver_chain(cx: &FileCx, dot_pos: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut p = dot_pos; // points at the `.` in `code`
    while let Some(prev) = p.checked_sub(1) {
        let tok = &cx.toks[cx.code[prev]];
        match (tok.kind, cx.text(tok)) {
            (Kind::Ident, name) => {
                parts.push(name.to_string());
                // Continue only through a `.` chain.
                match prev.checked_sub(1).map(|q| cx.text(&cx.toks[cx.code[q]])) {
                    Some(".") => p = prev - 1,
                    _ => break,
                }
            }
            (Kind::Punct, ")") | (Kind::Punct, "]") => {
                // Skip the balanced group, then take the name before it.
                let mut depth = 0isize;
                let mut q = prev;
                loop {
                    match cx.text(&cx.toks[cx.code[q]]) {
                        ")" | "]" => depth += 1,
                        "(" | "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(qq) = q.checked_sub(1) else { break };
                    q = qq;
                }
                let Some(before) = q.checked_sub(1) else {
                    break;
                };
                let t = &cx.toks[cx.code[before]];
                if t.kind == Kind::Ident {
                    parts.push(cx.text(t).to_string());
                }
                break;
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.join(".")
}

/// Looks back from `lock` at `code[pos]` for a `let [mut] name = receiver…`
/// statement head; returns the bound name.
pub(crate) fn let_binding(cx: &FileCx, pos: usize) -> Option<String> {
    // Walk back to the statement boundary.
    let mut p = pos;
    let mut eq: Option<usize> = None;
    while let Some(prev) = p.checked_sub(1) {
        let t = &cx.toks[cx.code[prev]];
        match (t.kind, cx.text(t)) {
            (Kind::Punct, ";") | (Kind::Punct, "{") | (Kind::Punct, "}") => {
                p = prev;
                break;
            }
            (Kind::Punct, "=") => eq = Some(prev),
            _ => {}
        }
        p = prev;
        if p == 0 {
            break;
        }
    }
    let eq = eq?;
    // Statement head is at `p` (just after the boundary); expect
    // `let [mut] name =` ending at `eq`.
    let head = if cx.text(&cx.toks[cx.code[p]]) == ";"
        || cx.text(&cx.toks[cx.code[p]]) == "{"
        || cx.text(&cx.toks[cx.code[p]]) == "}"
    {
        p + 1
    } else {
        p
    };
    if cx.text(&cx.toks[cx.code[head]]) != "let" {
        return None;
    }
    let mut n = head + 1;
    if cx.text(&cx.toks[cx.code[n]]) == "mut" {
        n += 1;
    }
    let name_tok = &cx.toks[cx.code[n]];
    if name_tok.kind == Kind::Ident && n < eq {
        Some(cx.text(name_tok).to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;
    use crate::LintConfig;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let cx = FileCx::new(&file);
        let mut ledger = AllowLedger::new(&cx.allows);
        let mut out = Vec::new();
        check(&cx, &LintConfig::workspace(), &mut ledger, &mut out);
        out
    }

    const REGISTRY: &str = "crates/serve/src/registry.rs";

    #[test]
    fn declared_outer_to_inner_nesting_is_clean() {
        // serve.registry.inner → core.forecaster.model is the declared order.
        let out = run(
            REGISTRY,
            "fn get(&self) { let g = self.inner.lock(); let m = model.lock(); use2(g, m); }",
        );
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }

    #[test]
    fn inverted_nesting_fires() {
        let out = run(
            REGISTRY,
            "fn get(&self) { let m = model.lock(); let g = self.inner.lock(); use2(g, m); }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "lock_order");
        assert!(out[0].message.contains("inverts the declared lock order"));
    }

    #[test]
    fn reentrant_acquisition_fires() {
        let out = run(
            REGISTRY,
            "fn get(&self) { let a = self.inner.lock(); let b = self.inner.lock(); use2(a, b); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("re-entrant"));
    }

    #[test]
    fn near_miss_sequential_acquisitions_are_clean() {
        // Guard dropped (block close / drop()) before the next lock.
        let out = run(
            REGISTRY,
            r#"fn a(&self) { { let g = self.inner.lock(); touch(g); } let m = model.lock(); touch(m); }
               fn b(&self) { let g = self.inner.lock(); drop(g); let g2 = self.inner.lock(); touch(g2); }
               fn c(&self) { self.inner.lock().len(); model.lock().len(); }"#,
        );
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }

    #[test]
    fn undeclared_lock_in_nest_fires() {
        let out = run(
            REGISTRY,
            "fn get(&self) { let g = self.inner.lock(); let x = mystery.lock(); use2(g, x); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("undeclared lock"));
    }

    #[test]
    fn near_miss_out_of_scope_file_is_silent() {
        let out = run(
            "crates/place/src/anneal.rs",
            "fn f(&self) { let a = x.lock(); let b = y.lock(); use2(a, b); }",
        );
        assert!(out.is_empty());
    }

    fn run_cross(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        let cxs: Vec<FileCx> = sources.iter().map(FileCx::new).collect();
        let mut ledgers: Vec<(String, AllowLedger)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), AllowLedger::new(&cx.allows)))
            .collect();
        let parsed: Vec<(String, crate::parser::FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), crate::parser::parse(cx)))
            .collect();
        let tab = crate::symtab::SymTab::build(&parsed);
        let g = crate::graph::CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace());
        let mut out = Vec::new();
        check_cross(&g, &LintConfig::workspace(), &mut ledgers, &mut out);
        out
    }

    #[test]
    fn cross_fn_inversion_split_across_two_fns_fires_with_chain() {
        // `outer` holds the model lock and calls `inner_path`, which
        // acquires the registry lock — an inversion no single fn shows.
        let out = run_cross(&[(
            REGISTRY,
            "impl Registry {\n  fn outer(&self) {\n    let m = model.lock();\n    self.inner_path();\n    drop(m);\n  }\n  fn inner_path(&self) { let g = self.inner.lock(); touch(g); }\n}\nfn touch(g: usize) {}",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_order");
        assert!(out[0].message.contains("inverts the declared lock order"));
        assert!(out[0].message.contains("Registry::inner_path"));
        assert_eq!(
            out[0].chain,
            vec!["Registry::outer", "Registry::inner_path"]
        );
    }

    #[test]
    fn near_miss_declared_order_through_a_callee_is_clean() {
        // Outer→inner through a call edge follows the declared order.
        let out = run_cross(&[(
            REGISTRY,
            "impl Registry {\n  fn outer(&self) {\n    let g = self.inner.lock();\n    self.with_model();\n    drop(g);\n  }\n  fn with_model(&self) { let m = model.lock(); touch(m); }\n}\nfn touch(g: usize) {}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn near_miss_guard_helper_call_is_not_reentrant() {
        // `self.lock()` IS the acquisition; charging the helper's internal
        // `.lock()` against the caller would be a self-inflicted
        // re-entrancy report.
        let out = run_cross(&[(
            REGISTRY,
            "impl Registry {\n  fn lock(&self) -> MutexGuard<'_, Inner> { self.inner.lock() }\n  fn get(&self) { let g = self.lock(); touch2(g); }\n}\nfn touch2(g: usize) {}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reentrant_acquisition_through_a_helper_fires() {
        let out = run_cross(&[(
            REGISTRY,
            "impl Registry {\n  fn get(&self) {\n    let g = self.inner.lock();\n    self.also_locks();\n    drop(g);\n  }\n  fn also_locks(&self) { let h = self.inner.lock(); touch(h); }\n}\nfn touch(g: usize) {}",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("re-entrant"));
    }

    #[test]
    fn receiver_chains_resolve_through_aliases() {
        // `self.inner` and bare `inner` both canonicalize to
        // serve.registry.inner; a held-across-fns false positive would
        // appear if fn boundaries didn't reset.
        let out = run(
            REGISTRY,
            "fn a(&self) { let g = self.inner.lock(); touch(g); }\nfn b(&self) { let g = inner.lock(); touch(g); }",
        );
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }
}
