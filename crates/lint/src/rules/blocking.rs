//! Blocking-in-hot-path: reachability from engine worker inner loops.
//!
//! A `ForecastEngine` worker that blocks — a mutex, a condvar wait, a
//! channel `recv`, file I/O, a sleep — stalls every request coalesced
//! behind it, so the worker inner loop and everything it reaches must
//! stay on the CPU. The roots come from
//! [`crate::LintConfig::hot_loop_roots`] (`(file suffix, fn name)`
//! pairs); shields are not honored — a caught panic does not unblock a
//! thread. The queue rendezvous itself (the bounded pop the loop parks
//! on) is the sanctioned exception and carries
//! `// lint: allow(blocking)` with a rationale.

use crate::context::AllowLedger;
use crate::graph::CallGraph;
use crate::report::Finding;
use crate::symtab::FnId;
use crate::LintConfig;

pub fn check(
    g: &CallGraph,
    cfg: &LintConfig,
    ledgers: &mut [(String, AllowLedger)],
    out: &mut Vec<Finding>,
) {
    let roots: Vec<FnId> = g
        .tab
        .fns
        .iter()
        .enumerate()
        .filter(|(_, def)| {
            cfg.hot_loop_roots
                .iter()
                .any(|(file, name)| def.file.ends_with(file) && *name == def.item.name)
        })
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let rule = "blocking";
    let parents = g.reachable(&roots, false);
    for &id in parents.keys() {
        let def = &g.tab.fns[id];
        let node = &g.nodes[id];
        if node.facts.blocking.is_empty() {
            continue;
        }
        let chain = g.chain(&parents, id);
        let root = chain.first().cloned().unwrap_or_default();
        let display = def.display();
        let ledger = &mut ledgers[def.file_idx].1;
        for s in &node.facts.blocking {
            if ledger.suppresses(rule, s.line) {
                continue;
            }
            let msg = if chain.len() > 1 {
                format!(
                    "{} reachable from hot loop `{root}`; workers must not block mid-batch",
                    s.what
                )
            } else {
                format!(
                    "{} in hot loop `{root}`; workers must not block mid-batch",
                    s.what
                )
            };
            out.push(
                Finding::new(rule, &def.file, s.line, Some(&display), msg)
                    .with_chain(chain.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileCx, SourceFile};
    use crate::parser::{self, FileItems};
    use crate::symtab::SymTab;
    use crate::LintConfig;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        let cxs: Vec<FileCx> = sources.iter().map(FileCx::new).collect();
        let mut ledgers: Vec<(String, AllowLedger)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), AllowLedger::new(&cx.allows)))
            .collect();
        let parsed: Vec<(String, FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), parser::parse(cx)))
            .collect();
        let tab = SymTab::build(&parsed);
        let g = CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace());
        let mut out = Vec::new();
        check(&g, &LintConfig::workspace(), &mut ledgers, &mut out);
        out
    }

    const ENGINE: &str = "crates/serve/src/engine.rs";

    #[test]
    fn sleep_in_the_loop_and_lock_one_hop_below_fire() {
        let out = run(&[
            (
                ENGINE,
                "fn worker_loop(q: Q) { std::thread::sleep(d); helper(); }",
            ),
            (
                "crates/core/src/model.rs",
                "pub fn helper() { shared.lock().step(); }",
            ),
        ]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("thread::sleep")));
        let lock = out
            .iter()
            .find(|f| f.message.contains("`.lock()`"))
            .expect("lock finding");
        assert_eq!(lock.chain, vec!["worker_loop", "helper"]);
    }

    #[test]
    fn near_miss_blocking_outside_the_loop_is_silent() {
        // Same file, but `submit` is not a hot-loop root and nothing the
        // loop reaches calls it.
        let out = run(&[(
            ENGINE,
            "fn worker_loop(q: Q) { step(); }\nfn step() {}\nfn submit(ch: C) { ch.recv(); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_annotation_sanctions_the_rendezvous() {
        let out = run(&[(
            ENGINE,
            "fn worker_loop(q: Q) {\n  // lint: allow(blocking) — bounded-queue rendezvous, by design\n  q.recv();\n}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
