//! The rule engines. `unsafe_audit`, `names` and the intra-fn half of
//! `locks` walk one [`crate::context::FileCx`]; `determinism`,
//! `panic_path`, `blocking` and the cross-fn half of `locks` are
//! reachability analyses over the [`crate::graph::CallGraph`] built in
//! [`crate::lint_files`] once every file is scanned.

pub mod blocking;
pub mod determinism;
pub mod locks;
pub mod names;
pub mod panic_path;
pub mod unsafe_audit;
