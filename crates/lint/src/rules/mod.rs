//! The five rule engines. Each walks one [`crate::context::FileCx`] and
//! pushes [`crate::report::Finding`]s; cross-file checks (inventory
//! diffs) happen in [`crate::lint_files`] once every file is scanned.

pub mod determinism;
pub mod locks;
pub mod names;
pub mod panic_path;
pub mod unsafe_audit;
