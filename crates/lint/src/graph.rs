//! The workspace call graph: per-fn facts (panic sites, wall-clock,
//! blocking primitives, lock acquisitions) plus resolved call edges, and
//! the reachability machinery the transitive rules run on.
//!
//! Resolution policy (documented in the README "Static analysis"
//! section):
//!
//! * receivers are typed from `self`, params, struct fields, and `let`
//!   bindings (ascribed, or inferred from resolvable call results), with
//!   `&` / `Arc` / `Box` / guards / `Mutex` stripped as deref-transparent
//!   and `Result<T, E>` / `Option<T>` collapsing to their payload;
//! * a receiver typed to a non-workspace head (`Vec`, `Instant`, …)
//!   resolves **external** — no edges;
//! * an unknown receiver **over-approximates** to every workspace method
//!   of that name (extra edges can only add findings, never hide one);
//! * call sites inside `catch_unwind(…)` arguments are **shielded**: the
//!   panic reachability does not traverse them (that boundary is the
//!   design), every other rule does;
//! * nested `fn` items inside a body are scanned as part of the enclosing
//!   fn — their facts and calls attribute to the outer fn, which
//!   over-approximates only when the nested fn is never invoked.

use crate::context::FileCx;
use crate::lexer::Kind;
use crate::parser::{FileItems, KEYWORDS};
use crate::symtab::{FnId, SymTab};
use crate::LintConfig;
use std::collections::{BTreeMap, VecDeque};

pub const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
pub const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const ORDER_SENSITIVE_TYPES: [&str; 2] = ["HashMap", "HashSet"];
/// Method names that block the calling thread.
const BLOCKING_METHODS: [&str; 6] = [
    "lock",
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
];
/// Guard-acquiring methods that deref to the protected payload when the
/// workspace type itself has no such method.
const ACQUIRE_METHODS: [&str; 5] = ["lock", "read", "write", "borrow", "borrow_mut"];

/// One fact site inside a fn body.
#[derive(Debug, Clone)]
pub struct Site {
    pub line: u32,
    /// Human description, e.g. `` `.unwrap()` `` or `` `Instant` ``.
    pub what: String,
}

/// Everything a rule needs to know about one fn without re-reading it.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub panic_sites: Vec<Site>,
    pub wall_clock: Vec<Site>,
    pub map_order: Vec<Site>,
    pub blocking: Vec<Site>,
    /// Direct `.lock()` acquisitions: `(canonical name, line)`.
    pub lock_acquires: Vec<(String, u32)>,
    /// Body mentions `Fnv1a` — a determinism root.
    pub uses_fnv: bool,
    /// Returns a `MutexGuard` over exactly one directly-acquired lock:
    /// callers acquire that lock at the call site.
    pub returns_guard_of: Option<String>,
}

/// How a call site was resolved — the buckets behind `resolution_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Typed/path/free-name lookup produced ≥1 workspace target.
    Precise,
    /// Proven non-workspace: std path, foreign receiver type,
    /// constructor, closure, or a known type without the method.
    External,
    /// Unknown receiver; name fallback produced ≥1 workspace target.
    Approx,
    /// Unknown receiver and no workspace method of that name.
    ApproxExternal,
}

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
    pub targets: Vec<FnId>,
    pub verdict: Verdict,
    /// Inside a `catch_unwind(…)` argument.
    pub shielded: bool,
    /// Canonical locks held when the call is made (lock-scope files only):
    /// `(canonical name, acquisition line)`.
    pub held: Vec<(String, u32)>,
}

/// Facts + calls for one symbol-table fn.
#[derive(Debug, Clone, Default)]
pub struct FnNode {
    pub facts: FnFacts,
    pub calls: Vec<CallSite>,
}

/// Aggregate resolution counters, serialized into the graph dump and the
/// lint bench.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GraphStats {
    pub files: usize,
    pub fns: usize,
    pub call_sites: usize,
    pub edges: usize,
    pub precise: usize,
    pub external: usize,
    pub approx: usize,
    pub approx_external: usize,
}

impl GraphStats {
    /// Share of call sites with a definitive typed verdict (precise
    /// workspace target or proven external). Name-fallback
    /// over-approximation counts against the rate.
    pub fn resolution_rate(&self) -> f64 {
        if self.call_sites == 0 {
            return 1.0;
        }
        (self.precise + self.external) as f64 / self.call_sites as f64
    }
}

/// The whole-workspace call graph.
pub struct CallGraph {
    pub tab: SymTab,
    /// Parallel to `tab.fns`.
    pub nodes: Vec<FnNode>,
    pub stats: GraphStats,
}

impl CallGraph {
    /// Builds facts and edges for every non-test fn. `cxs` and `parsed`
    /// are parallel to the scanned file list the symbol table was built
    /// from.
    pub fn build(
        cxs: &[FileCx],
        parsed: &[(String, FileItems)],
        tab: SymTab,
        cfg: &LintConfig,
    ) -> Self {
        let mut nodes: Vec<FnNode> = vec![FnNode::default(); tab.fns.len()];
        // Pre-pass: guard-returning helpers, so held-lock tracking in the
        // main pass can charge their call sites with the acquisition.
        let mut guards: Vec<Option<String>> = vec![None; tab.fns.len()];
        for (id, def) in tab.fns.iter().enumerate() {
            if def.item.ret_raw.as_deref() != Some("MutexGuard") || !cfg.in_lock_scope(&def.file) {
                continue;
            }
            let acquires = direct_lock_acquires(&cxs[def.file_idx], def, cfg);
            if acquires.len() == 1 {
                guards[id] = Some(acquires[0].0.clone());
            }
        }
        let mut stats = GraphStats {
            files: cxs.len(),
            fns: tab.fns.len(),
            ..GraphStats::default()
        };
        for id in 0..tab.fns.len() {
            let def = &tab.fns[id];
            let Some(body) = def.item.body else { continue };
            let mut scan = BodyScan::new(
                &cxs[def.file_idx],
                &tab,
                cfg,
                id,
                &guards,
                &parsed[def.file_idx].1.uses,
            );
            scan.run(body);
            stats.call_sites += scan.calls.len();
            for c in &scan.calls {
                stats.edges += c.targets.len();
                match c.verdict {
                    Verdict::Precise => stats.precise += 1,
                    Verdict::External => stats.external += 1,
                    Verdict::Approx => stats.approx += 1,
                    Verdict::ApproxExternal => stats.approx_external += 1,
                }
            }
            let mut facts = scan.facts;
            facts.returns_guard_of = guards[id].clone();
            nodes[id] = FnNode {
                facts,
                calls: scan.calls,
            };
        }
        CallGraph { tab, nodes, stats }
    }

    /// Multi-source BFS over call edges. Returns, for every reachable fn,
    /// its BFS parent (`None` for roots). With `honor_shield`, edges at
    /// shielded call sites are not traversed — the panic rule's view.
    pub fn reachable(&self, roots: &[FnId], honor_shield: bool) -> BTreeMap<FnId, Option<FnId>> {
        let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for call in &self.nodes[f].calls {
                if honor_shield && call.shielded {
                    continue;
                }
                for &t in &call.targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(Some(f));
                        queue.push_back(t);
                    }
                }
            }
        }
        parent
    }

    /// Display-name chain root → … → `target` out of a [`Self::reachable`]
    /// parent map.
    pub fn chain(&self, parents: &BTreeMap<FnId, Option<FnId>>, target: FnId) -> Vec<String> {
        let mut ids = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parents.get(&cur) {
            ids.push(*p);
            cur = *p;
        }
        ids.reverse();
        ids.iter().map(|&id| self.tab.fns[id].display()).collect()
    }

    /// Callers of each fn, with the shielded flag per edge.
    pub fn callers(&self) -> BTreeMap<FnId, Vec<(FnId, bool)>> {
        let mut map: BTreeMap<FnId, Vec<(FnId, bool)>> = BTreeMap::new();
        for (from, node) in self.nodes.iter().enumerate() {
            for call in &node.calls {
                for &t in &call.targets {
                    map.entry(t).or_default().push((from, call.shielded));
                }
            }
        }
        map
    }

    /// Graphviz DOT dump; shielded edges are dashed.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph pop_call_graph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n",
        );
        for (id, def) in self.tab.fns.iter().enumerate() {
            out.push_str(&format!(
                "  n{id} [label=\"{}\\n{}:{}\"];\n",
                escape(&def.display()),
                escape(&def.file),
                def.item.line
            ));
        }
        for (from, node) in self.nodes.iter().enumerate() {
            for call in &node.calls {
                for &to in &call.targets {
                    let style = if call.shielded { " [style=dashed]" } else { "" };
                    out.push_str(&format!("  n{from} -> n{to}{style};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// JSON dump: nodes with fact summaries, edges, and the stats block.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"fns\":[");
        for (id, def) in self.tab.fns.iter().enumerate() {
            if id > 0 {
                out.push(',');
            }
            let facts = &self.nodes[id].facts;
            out.push_str(&format!(
                "{{\"id\":{id},\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"can_panic_direct\":{},\"wall_clock\":{},\"blocking\":{}}}",
                escape(&def.qualified()),
                escape(&def.file),
                def.item.line,
                !facts.panic_sites.is_empty(),
                !facts.wall_clock.is_empty(),
                !facts.blocking.is_empty(),
            ));
        }
        out.push_str("],\"edges\":[");
        let mut first = true;
        for (from, node) in self.nodes.iter().enumerate() {
            for call in &node.calls {
                for &to in &call.targets {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!(
                        "{{\"from\":{from},\"to\":{to},\"line\":{},\"shielded\":{}}}",
                        call.line, call.shielded
                    ));
                }
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "],\"stats\":{{\"files\":{},\"fns\":{},\"call_sites\":{},\"edges\":{},\"precise\":{},\"external\":{},\"approx\":{},\"approx_external\":{},\"resolution_rate\":{:.4}}}}}",
            s.files,
            s.fns,
            s.call_sites,
            s.edges,
            s.precise,
            s.external,
            s.approx,
            s.approx_external,
            s.resolution_rate()
        ));
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Cheap pre-pass: direct `.lock()` sites of one fn, canonicalized.
fn direct_lock_acquires(
    cx: &FileCx,
    def: &crate::symtab::FnDef,
    cfg: &LintConfig,
) -> Vec<(String, u32)> {
    let Some((open, close)) = def.item.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for pos in open + 1..close {
        let tok = &cx.toks[cx.code[pos]];
        if tok.kind != Kind::Ident || cx.text(tok) != "lock" {
            continue;
        }
        let prev = pos.checked_sub(1).map(|p| cx.text(&cx.toks[cx.code[p]]));
        let next = cx.code.get(pos + 1).map(|&n| cx.text(&cx.toks[n]));
        let next2 = cx.code.get(pos + 2).map(|&n| cx.text(&cx.toks[n]));
        if prev == Some(".") && next == Some("(") && next2 == Some(")") {
            let receiver = crate::rules::locks::receiver_chain(cx, pos - 1);
            out.push((cfg.canonical_lock(&cx.file.rel_path, &receiver), tok.line));
        }
    }
    out
}

/// Inferred value type during a body scan.
#[derive(Debug, Clone, PartialEq)]
enum Ty {
    /// A workspace type (or trait, for trait objects / generic bounds).
    Ws(String),
    /// Proven non-workspace.
    Ext,
    Unk,
}

impl Ty {
    /// A head-type name → inferred type class. Short uppercase-initial
    /// names not in the table are treated as generic parameters (unknown,
    /// so method calls over-approximate rather than under-approximate).
    fn from_head(head: Option<&str>, tab: &SymTab) -> Ty {
        match head {
            None => Ty::Unk,
            Some(h) => {
                if tab.is_type(h) || tab.is_trait(h) {
                    Ty::Ws(h.to_string())
                } else if h.len() <= 2 && h.chars().next().is_some_and(char::is_uppercase) {
                    Ty::Unk // generic parameter (T, F, K, V, …)
                } else {
                    Ty::Ext
                }
            }
        }
    }
}

/// A guard held during the scan (mirrors the locks rule's liveness model).
struct HeldG {
    canonical: String,
    line: u32,
    bound: Option<String>,
    depth: usize,
    temp: bool,
}

struct BodyScan<'a, 'b> {
    cx: &'a FileCx<'b>,
    tab: &'a SymTab,
    cfg: &'a LintConfig,
    me: FnId,
    guards: &'a [Option<String>],
    uses: &'a [(String, Vec<String>)],
    /// Lexical scopes of local bindings.
    locals: Vec<BTreeMap<String, Ty>>,
    held: Vec<HeldG>,
    depth: usize,
    /// End positions (exclusive) of active `catch_unwind(…)` arguments.
    shields: Vec<usize>,
    lock_scope: bool,
    facts: FnFacts,
    calls: Vec<CallSite>,
}

impl<'a, 'b> BodyScan<'a, 'b> {
    fn new(
        cx: &'a FileCx<'b>,
        tab: &'a SymTab,
        cfg: &'a LintConfig,
        me: FnId,
        guards: &'a [Option<String>],
        uses: &'a [(String, Vec<String>)],
    ) -> Self {
        let def = &tab.fns[me];
        let mut params = BTreeMap::new();
        for (name, ty) in &def.item.params {
            params.insert(name.clone(), Ty::from_head(ty.as_deref(), tab));
        }
        let lock_scope = cfg.in_lock_scope(&def.file);
        BodyScan {
            cx,
            tab,
            cfg,
            me,
            guards,
            uses,
            locals: vec![params],
            held: Vec::new(),
            depth: 0,
            shields: Vec::new(),
            lock_scope,
            facts: FnFacts::default(),
            calls: Vec::new(),
        }
    }

    fn text_at(&self, pos: usize) -> &str {
        self.cx
            .code
            .get(pos)
            .map(|&i| self.cx.toks[i].text(&self.cx.file.text))
            .unwrap_or("")
    }

    fn kind_at(&self, pos: usize) -> Option<Kind> {
        self.cx.code.get(pos).map(|&i| self.cx.toks[i].kind)
    }

    fn is_punct2(&self, pos: usize, a: &str, b: &str) -> bool {
        let Some(&i) = self.cx.code.get(pos) else {
            return false;
        };
        let Some(&j) = self.cx.code.get(pos + 1) else {
            return false;
        };
        let (ta, tb) = (&self.cx.toks[i], &self.cx.toks[j]);
        ta.kind == Kind::Punct
            && tb.kind == Kind::Punct
            && ta.text(&self.cx.file.text) == a
            && tb.text(&self.cx.file.text) == b
            && ta.end == tb.start
    }

    /// Position just past a balanced group opening at `start`.
    fn skip_group(&self, start: usize) -> usize {
        let (open, close) = match self.text_at(start) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            "<" => ("<", ">"),
            _ => return start + 1,
        };
        let mut depth = 0usize;
        let mut pos = start;
        while pos < self.cx.code.len() {
            let t = self.text_at(pos);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return pos + 1;
                }
            }
            pos += 1;
        }
        pos
    }

    fn lookup_local(&self, name: &str) -> Option<Ty> {
        for scope in self.locals.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        None
    }

    fn bind(&mut self, name: String, ty: Ty) {
        if let Some(scope) = self.locals.last_mut() {
            scope.insert(name, ty);
        }
    }

    fn line_of(&self, pos: usize) -> u32 {
        self.cx
            .code
            .get(pos)
            .map(|&i| self.cx.toks[i].line)
            .unwrap_or(0)
    }

    fn self_ty(&self) -> Ty {
        self.tab.fns[self.me]
            .item
            .self_ty
            .clone()
            .map_or(Ty::Unk, Ty::Ws)
    }

    fn run(&mut self, body: (usize, usize)) {
        let (open, close) = body;
        let mut pos = open + 1;
        while pos < close {
            self.shields.retain(|&end| pos < end);
            let kind = self.kind_at(pos);
            let text = self.text_at(pos).to_string();
            match (kind, text.as_str()) {
                (Some(Kind::Punct), "{") => {
                    self.depth += 1;
                    self.locals.push(BTreeMap::new());
                }
                (Some(Kind::Punct), "}") => {
                    self.depth = self.depth.saturating_sub(1);
                    let d = self.depth;
                    self.held.retain(|h| h.depth <= d);
                    if self.locals.len() > 1 {
                        self.locals.pop();
                    }
                }
                (Some(Kind::Punct), ";") => self.held.retain(|h| !h.temp),
                // `call(…)[i]` / `arr[i][j]` indexing sugar.
                (Some(Kind::Punct), ")") | (Some(Kind::Punct), "]")
                    if self.text_at(pos + 1) == "["
                        && !self.cx.is_test(self.cx.code[pos])
                        && !self.cx.is_use(self.cx.code[pos]) =>
                {
                    self.facts.panic_sites.push(Site {
                        line: self.line_of(pos + 1),
                        what: "indexing sugar (`[…]`)".to_string(),
                    });
                }
                (Some(Kind::Ident), "let") => self.handle_let(pos),
                (Some(Kind::Ident), "drop")
                    if self.text_at(pos + 1) == "(" && self.text_at(pos + 3) == ")" =>
                {
                    let arg = self.text_at(pos + 2).to_string();
                    self.held
                        .retain(|h| h.bound.as_deref() != Some(arg.as_str()));
                }
                // A `drop` that is not the single-binding release form must
                // not fall through to `handle_ident`: it would register a
                // call site that Approx-resolves onto `Drop::drop` impls.
                (Some(Kind::Ident), "drop") => {}
                (Some(Kind::Ident), _) => self.handle_ident(pos, &text),
                _ => {}
            }
            pos += 1;
        }
    }

    /// `let [mut] name [: Type] = …` — record the binding's type.
    fn handle_let(&mut self, let_pos: usize) {
        let mut pos = let_pos + 1;
        if self.text_at(pos) == "mut" {
            pos += 1;
        }
        if self.kind_at(pos) != Some(Kind::Ident) {
            return; // tuple/struct pattern — locals stay unknown
        }
        let name = self.text_at(pos).to_string();
        if KEYWORDS.contains(&name.as_str()) || name.chars().next().is_some_and(char::is_uppercase)
        {
            return; // `let Some(x) = …` / `let Ok(x) = …` patterns
        }
        pos += 1;
        // Explicit ascription wins.
        if self.text_at(pos) == ":" && !self.is_punct2(pos, ":", ":") {
            let head = self.type_head_after(pos + 1);
            self.bind(name, Ty::from_head(head.as_deref(), self.tab));
            return;
        }
        if self.text_at(pos) != "=" || self.text_at(pos + 1) == "=" {
            return;
        }
        let ty = self.rhs_type(pos + 1);
        self.bind(name, ty);
    }

    /// Head of a written type starting at `pos` (deref-stripped).
    fn type_head_after(&self, mut pos: usize) -> Option<String> {
        loop {
            match (self.kind_at(pos), self.text_at(pos)) {
                (Some(Kind::Punct), "&") | (Some(Kind::Punct), "*") => pos += 1,
                (Some(Kind::Lifetime), _) => pos += 1,
                (Some(Kind::Ident), "mut" | "dyn" | "impl" | "const") => pos += 1,
                _ => break,
            }
        }
        if self.kind_at(pos) != Some(Kind::Ident) {
            return None;
        }
        let mut head = self.text_at(pos).to_string();
        pos += 1;
        while self.is_punct2(pos, ":", ":") {
            pos += 2;
            if self.kind_at(pos) == Some(Kind::Ident) {
                head = self.text_at(pos).to_string();
                pos += 1;
            } else {
                break;
            }
        }
        if crate::parser::deref_transparent(&head) && self.text_at(pos) == "<" {
            // Take the last generic argument — the payload for every
            // wrapper in the transparent list.
            let close = self.skip_group(pos);
            let mut depth = 0usize;
            let mut last_start = pos + 1;
            let mut p = pos;
            while p + 1 < close {
                match self.text_at(p) {
                    "<" => depth += 1,
                    ">" => depth = depth.saturating_sub(1),
                    "," if depth == 1 => last_start = p + 1,
                    _ => {}
                }
                p += 1;
            }
            return self.type_head_after(last_start);
        }
        Some(head)
    }

    /// Best-effort type of the expression starting at `pos` (a `let` rhs).
    fn rhs_type(&mut self, mut pos: usize) -> Ty {
        loop {
            match (self.kind_at(pos), self.text_at(pos)) {
                (Some(Kind::Punct), "&") => pos += 1,
                (Some(Kind::Ident), "mut") => pos += 1,
                _ => break,
            }
        }
        match self.kind_at(pos) {
            Some(Kind::Num) | Some(Kind::Str) | Some(Kind::Char) => Ty::Ext,
            Some(Kind::Ident) => {
                let (ty, after) = self.primary_type(pos);
                self.apply_postfix(ty, after)
            }
            _ => Ty::Unk,
        }
    }

    /// Type of a primary expression head: local, `self`, path, call, or
    /// struct literal. Returns the type and the position just past it.
    fn primary_type(&mut self, pos: usize) -> (Ty, usize) {
        if self.kind_at(pos) != Some(Kind::Ident) {
            return (Ty::Unk, pos + 1);
        }
        let name = self.text_at(pos).to_string();
        if name == "self" {
            return (self.self_ty(), pos + 1);
        }
        // Macro invocation: `format!(…)` and friends are external values.
        if self.text_at(pos + 1) == "!" {
            return (Ty::Ext, pos + 1);
        }
        // Path expression: collect segments, `seg :: seg :: …`.
        if self.is_punct2(pos + 1, ":", ":") {
            let mut segs = vec![name];
            let mut p = pos + 1;
            while self.is_punct2(p, ":", ":") && self.kind_at(p + 2) == Some(Kind::Ident) {
                segs.push(self.text_at(p + 2).to_string());
                p += 3;
            }
            let after = p; // position past the last segment
            if self.text_at(after) == "(" {
                // Path call: type from the resolved targets' return type.
                let (targets, verdict) = self.resolve_path_call(&segs);
                let ty = if targets.is_empty() && verdict == Verdict::External {
                    Ty::Ext
                } else {
                    self.common_ret(&targets)
                };
                return (ty, self.skip_group(after));
            }
            let last = segs.last().cloned().unwrap_or_default();
            if last.chars().next().is_some_and(char::is_uppercase) && segs.len() >= 2 {
                // `Enum::Variant` (or an associated const): the owner type.
                let owner = segs[segs.len() - 2].clone();
                let owner = if owner == "Self" {
                    self.tab.fns[self.me]
                        .item
                        .self_ty
                        .clone()
                        .unwrap_or_default()
                } else {
                    owner
                };
                if self.tab.is_type(&owner) {
                    return (Ty::Ws(owner), after);
                }
            }
            return (Ty::Unk, after);
        }
        if let Some(ty) = self.lookup_local(&name) {
            return (ty, pos + 1);
        }
        if name.chars().next().is_some_and(char::is_uppercase) {
            if self.text_at(pos + 1) == "{" && self.tab.is_type(&name) {
                // Struct literal.
                return (Ty::Ws(name), self.skip_group(pos + 1));
            }
            return (Ty::Unk, pos + 1);
        }
        if self.text_at(pos + 1) == "(" {
            // Free-fn call result.
            let ids = self.tab.free_fns(&name, &self.tab.fns[self.me].file);
            return (self.common_ret(&ids), self.skip_group(pos + 1));
        }
        (Ty::Unk, pos + 1)
    }

    /// Applies a `.field` / `.method(…)` / `?` postfix chain to `ty`.
    fn apply_postfix(&mut self, mut ty: Ty, mut pos: usize) -> Ty {
        loop {
            if self.text_at(pos) == "?" {
                pos += 1;
                continue;
            }
            if self.text_at(pos) != "." || self.kind_at(pos + 1) != Some(Kind::Ident) {
                return ty;
            }
            let seg = self.text_at(pos + 1).to_string();
            let mut call_open = pos + 2;
            if self.is_punct2(call_open, ":", ":") && self.text_at(call_open + 2) == "<" {
                call_open = self.skip_group(call_open + 2); // turbofish
            }
            if self.text_at(call_open) == "(" {
                ty = self.method_ret(&ty, &seg);
                pos = self.skip_group(call_open);
            } else {
                ty = self.field_ty(&ty, &seg);
                pos += 2;
            }
        }
    }

    fn field_ty(&self, ty: &Ty, field: &str) -> Ty {
        match ty {
            Ty::Ws(t) => match self.tab.field_type(t, field) {
                Some(head) => Ty::from_head(Some(head), self.tab),
                None => Ty::Unk,
            },
            Ty::Ext => Ty::Ext,
            Ty::Unk => Ty::Unk,
        }
    }

    fn method_ret(&self, ty: &Ty, name: &str) -> Ty {
        match ty {
            Ty::Ws(t) => {
                let ids = if self.tab.is_trait(t) {
                    self.tab.trait_impls(t, name)
                } else {
                    self.tab.methods_on(t, name)
                };
                if ids.is_empty() {
                    // `payload.lock()` on a `Mutex<Payload>`-typed field
                    // (the wrapper was stripped): the guard derefs back.
                    if ACQUIRE_METHODS.contains(&name) {
                        return ty.clone();
                    }
                    return Ty::Unk;
                }
                self.common_ret(&ids)
            }
            Ty::Ext => Ty::Ext,
            Ty::Unk => Ty::Unk,
        }
    }

    /// The agreed return type of a candidate set (Unk on disagreement).
    fn common_ret(&self, ids: &[FnId]) -> Ty {
        if ids.is_empty() {
            return Ty::Unk;
        }
        let mut ret: Option<Ty> = None;
        for &id in ids {
            let item = &self.tab.fns[id].item;
            let head = match item.ret.as_deref() {
                Some("Self") => item.self_ty.as_deref(),
                r => r,
            };
            let t = Ty::from_head(head, self.tab);
            match &ret {
                None => ret = Some(t),
                Some(prev) if *prev == t => {}
                Some(_) => return Ty::Unk,
            }
        }
        ret.unwrap_or(Ty::Unk)
    }

    /// The central per-ident dispatch: facts, shields, call sites.
    fn handle_ident(&mut self, pos: usize, text: &str) {
        let i = self.cx.code[pos];
        if self.cx.is_use(i) || self.cx.is_test(i) {
            return;
        }
        let line = self.line_of(pos);
        let prev = pos
            .checked_sub(1)
            .map(|p| self.text_at(p).to_string())
            .unwrap_or_default();
        let prev_dot = prev == "." && pos.checked_sub(2).is_none_or(|p| self.text_at(p) != ".");
        let next = self.text_at(pos + 1).to_string();

        // --- facts -------------------------------------------------------
        if WALL_CLOCK_TYPES.contains(&text) {
            self.facts.wall_clock.push(Site {
                line,
                what: format!("`{text}`"),
            });
        }
        if ORDER_SENSITIVE_TYPES.contains(&text) {
            self.facts.map_order.push(Site {
                line,
                what: format!("`{text}`"),
            });
        }
        if text == "Fnv1a" {
            self.facts.uses_fnv = true;
        }
        if matches!(text, "File" | "OpenOptions") && prev != "." {
            self.facts.blocking.push(Site {
                line,
                what: format!("file I/O (`{text}`)"),
            });
        }
        if text == "sleep" && next == "(" && !prev_dot {
            self.facts.blocking.push(Site {
                line,
                what: "`thread::sleep`".to_string(),
            });
        }
        if PANIC_MACROS.contains(&text) && next == "!" {
            self.facts.panic_sites.push(Site {
                line,
                what: format!("`{text}!`"),
            });
            return;
        }
        // `name[…]` indexing sugar (array literals and attributes have a
        // punct before their `[`, so only ident-adjacent brackets fire).
        if next == "[" && !KEYWORDS.contains(&text) {
            self.facts.panic_sites.push(Site {
                line: self.line_of(pos + 1),
                what: "indexing sugar (`[…]`)".to_string(),
            });
        }

        // --- method calls ------------------------------------------------
        if prev_dot && next == "(" {
            if PANIC_METHODS.contains(&text) {
                self.facts.panic_sites.push(Site {
                    line,
                    what: format!("`.{text}()`"),
                });
                return;
            }
            if BLOCKING_METHODS.contains(&text) {
                self.facts.blocking.push(Site {
                    line,
                    what: format!("`.{text}()`"),
                });
            }
            // `.lock()` with no args: the lock-order acquisition model.
            if text == "lock" && self.text_at(pos + 2) == ")" && self.lock_scope {
                let receiver = crate::rules::locks::receiver_chain(self.cx, pos - 1);
                let canonical = self.cfg.canonical_lock(&self.cx.file.rel_path, &receiver);
                self.facts.lock_acquires.push((canonical.clone(), line));
                let bound = crate::rules::locks::let_binding(self.cx, pos);
                let depth = self.depth;
                self.held.push(HeldG {
                    canonical,
                    line,
                    temp: bound.is_none(),
                    bound,
                    depth,
                });
            }
            self.record_method_call(pos, text, line);
            return;
        }

        // --- shield ------------------------------------------------------
        if text == "catch_unwind" && next == "(" {
            let end = self.skip_group(pos + 1);
            self.shields.push(end);
            return;
        }

        // --- path calls --------------------------------------------------
        if self.is_punct2(pos + 1, ":", ":") && !prev_dot && prev != ":" {
            let mut segs = vec![text.to_string()];
            let mut p = pos + 1;
            while self.is_punct2(p, ":", ":") && self.kind_at(p + 2) == Some(Kind::Ident) {
                segs.push(self.text_at(p + 2).to_string());
                p += 3;
            }
            let mut call_open = p;
            if self.is_punct2(p, ":", ":") && self.text_at(p + 2) == "<" {
                call_open = self.skip_group(p + 2); // turbofish
            }
            if self.text_at(call_open) != "(" {
                return;
            }
            let last = segs.last().cloned().unwrap_or_default();
            if last.chars().next().is_some_and(char::is_uppercase) {
                return; // `Enum::Variant(…)` / tuple-struct constructor
            }
            let (targets, verdict) = self.resolve_path_call(&segs);
            self.push_call(last, line, targets, verdict);
            return;
        }

        // --- plain calls -------------------------------------------------
        if next == "(" && !prev_dot && prev != ":" && prev != "fn" {
            if KEYWORDS.contains(&text) || text.chars().next().is_some_and(char::is_uppercase) {
                return;
            }
            if self.lookup_local(text).is_some() {
                // Closure / fn-pointer invocation of a local.
                self.push_call(text.to_string(), line, Vec::new(), Verdict::External);
                return;
            }
            let ids = self.tab.free_fns(text, &self.tab.fns[self.me].file);
            if ids.is_empty() {
                // Unresolved bare call: a nested fn (scanned inline above)
                // or a std/prelude fn — treated as proven-local-or-absent.
                self.push_call(text.to_string(), line, Vec::new(), Verdict::External);
            } else {
                self.push_call(text.to_string(), line, ids, Verdict::Precise);
            }
        }
    }

    /// Records a method call site: receiver typing, resolution, held set.
    fn record_method_call(&mut self, pos: usize, name: &str, line: u32) {
        let recv_ty = self.receiver_type(pos);
        let (targets, verdict) = match recv_ty {
            Ty::Ws(t) => {
                let ids = if self.tab.is_trait(&t) {
                    let mut ids = self.tab.trait_impls(&t, name);
                    if ids.is_empty() {
                        ids = self.tab.trait_defaults(name);
                    }
                    ids
                } else {
                    self.tab.methods_on(&t, name)
                };
                if ids.is_empty() {
                    // Known workspace type without the method: derives and
                    // std blanket impls — external by assumption.
                    (Vec::new(), Verdict::External)
                } else {
                    (ids, Verdict::Precise)
                }
            }
            Ty::Ext => (Vec::new(), Verdict::External),
            Ty::Unk => {
                let ids = self.tab.methods_named(name);
                if ids.is_empty() {
                    (Vec::new(), Verdict::ApproxExternal)
                } else {
                    (ids, Verdict::Approx)
                }
            }
        };
        // A precise call to a guard-returning helper acquires its lock.
        if self.lock_scope && verdict == Verdict::Precise && targets.len() == 1 {
            if let Some(l) = self.guards[targets[0]].clone() {
                let bound = crate::rules::locks::let_binding(self.cx, pos);
                let depth = self.depth;
                self.held.push(HeldG {
                    canonical: l,
                    line,
                    temp: bound.is_none(),
                    bound,
                    depth,
                });
            }
        }
        self.push_call(name.to_string(), line, targets, verdict);
    }

    /// Type of the receiver of the method call whose name ident is at
    /// `pos` (the `.` sits at `pos - 1`): walk the dotted chain back to
    /// its base, type the base, then apply the chain forward.
    fn receiver_type(&mut self, pos: usize) -> Ty {
        enum Seg {
            Field(String),
            Call(String),
        }
        let mut segs: Vec<Seg> = Vec::new();
        let mut p = pos - 1; // the `.`
        let base: Ty = loop {
            let Some(prev) = p.checked_sub(1) else {
                break Ty::Unk;
            };
            match (self.kind_at(prev), self.text_at(prev)) {
                (Some(Kind::Punct), "?") => {
                    p = prev;
                    continue;
                }
                (Some(Kind::Ident), name) => {
                    let name = name.to_string();
                    let before_dot = prev.checked_sub(1).is_some_and(|q| self.text_at(q) == ".");
                    let before_path = prev
                        .checked_sub(2)
                        .is_some_and(|q| self.is_punct2(q, ":", ":"));
                    if before_path {
                        // `a::b::CONST.method()` — type the path head.
                        let mut start = prev;
                        while start >= 2 && self.is_punct2(start - 2, ":", ":") {
                            start -= 3;
                        }
                        let (ty, _) = self.primary_type(start);
                        break ty;
                    }
                    if before_dot {
                        segs.push(Seg::Field(name));
                        p = prev - 1;
                        continue;
                    }
                    // Chain base: a plain ident.
                    if name == "self" {
                        break self.self_ty();
                    }
                    if let Some(ty) = self.lookup_local(&name) {
                        break ty;
                    }
                    if name.chars().next().is_some_and(char::is_uppercase) {
                        break if self.tab.is_type(&name) || self.tab.is_trait(&name) {
                            Ty::Ws(name)
                        } else {
                            Ty::Unk
                        };
                    }
                    break Ty::Unk;
                }
                (Some(Kind::Punct), ")") | (Some(Kind::Punct), "]") => {
                    // Walk back over the balanced group.
                    let closer = self.text_at(prev).to_string();
                    let opener = if closer == ")" { "(" } else { "[" };
                    let mut depth = 0usize;
                    let mut q = prev;
                    loop {
                        let t = self.text_at(q);
                        if t == closer {
                            depth += 1;
                        } else if t == opener {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        let Some(qq) = q.checked_sub(1) else { break };
                        q = qq;
                    }
                    if closer == "]" {
                        break Ty::Unk; // index result — element unknown
                    }
                    let Some(before) = q.checked_sub(1) else {
                        break Ty::Unk;
                    };
                    if self.kind_at(before) != Some(Kind::Ident) {
                        break Ty::Unk; // closure call result etc.
                    }
                    let name = self.text_at(before).to_string();
                    if before
                        .checked_sub(1)
                        .is_some_and(|r| self.text_at(r) == ".")
                    {
                        segs.push(Seg::Call(name));
                        p = before - 1;
                        continue;
                    }
                    if before >= 2 && self.is_punct2(before - 2, ":", ":") {
                        // `a::b::f(…).method()` — resolve the path call.
                        let mut start = before;
                        while start >= 2 && self.is_punct2(start - 2, ":", ":") {
                            start -= 3;
                        }
                        let mut path = vec![self.text_at(start).to_string()];
                        let mut r = start + 1;
                        while self.is_punct2(r, ":", ":")
                            && self.kind_at(r + 2) == Some(Kind::Ident)
                        {
                            path.push(self.text_at(r + 2).to_string());
                            r += 3;
                        }
                        let (targets, verdict) = self.resolve_path_call(&path);
                        break if targets.is_empty() && verdict == Verdict::External {
                            Ty::Ext
                        } else {
                            self.common_ret(&targets)
                        };
                    }
                    if self.lookup_local(&name).is_some() {
                        break Ty::Unk; // closure result
                    }
                    let ids = self.tab.free_fns(&name, &self.tab.fns[self.me].file);
                    break self.common_ret(&ids);
                }
                _ => break Ty::Unk,
            }
        };
        // Apply the collected (reversed) chain onto the base type.
        let mut ty = base;
        for seg in segs.iter().rev() {
            ty = match seg {
                Seg::Field(f) => self.field_ty(&ty, f),
                Seg::Call(m) => self.method_ret(&ty, m),
            };
        }
        ty
    }

    /// Resolves `a::b::name(…)` to targets + verdict.
    fn resolve_path_call(&self, segs: &[String]) -> (Vec<FnId>, Verdict) {
        if segs.len() < 2 {
            return (Vec::new(), Verdict::External);
        }
        let name = segs.last().unwrap().clone();
        let mut qual: Vec<String> = segs[..segs.len() - 1].to_vec();
        let me = &self.tab.fns[self.me];
        // Expand a `use` alias on the leading segment, then normalize
        // `crate`/`self`/`super` heads (a `use crate::…` alias reintroduces
        // one, hence alias expansion first).
        if let Some((_, path)) = self.uses.iter().find(|(alias, _)| *alias == qual[0]) {
            let mut expanded = path.clone();
            expanded.extend(qual.drain(1..));
            qual = expanded;
        }
        match qual[0].as_str() {
            "crate" => {
                qual.remove(0);
                if let Some(root) = me.module.first() {
                    qual.insert(0, root.clone());
                }
            }
            "self" => {
                qual.remove(0);
                for (i, seg) in me.module.iter().enumerate() {
                    qual.insert(i, seg.clone());
                }
            }
            "super" => {
                qual.remove(0);
                let parent = &me.module[..me.module.len().saturating_sub(1)];
                for (i, seg) in parent.iter().enumerate() {
                    qual.insert(i, seg.clone());
                }
            }
            _ => {}
        }
        if qual.is_empty() {
            let ids = self.tab.free_fns(&name, &me.file);
            return if ids.is_empty() {
                (Vec::new(), Verdict::External)
            } else {
                (ids, Verdict::Precise)
            };
        }
        if matches!(qual[0].as_str(), "std" | "core" | "alloc") {
            return (Vec::new(), Verdict::External);
        }
        // Type- or trait-qualified call?
        let owner = qual.last().cloned().unwrap_or_default();
        let owner = if owner == "Self" {
            me.item.self_ty.clone().unwrap_or(owner)
        } else {
            owner
        };
        if owner.chars().next().is_some_and(char::is_uppercase) {
            if self.tab.is_type(&owner) {
                let ids = self.tab.methods_on(&owner, &name);
                return if ids.is_empty() {
                    (Vec::new(), Verdict::External)
                } else {
                    (ids, Verdict::Precise)
                };
            }
            if self.tab.is_trait(&owner) {
                let mut ids = self.tab.trait_impls(&owner, &name);
                if ids.is_empty() {
                    ids = self.tab.trait_defaults(&name);
                }
                return if ids.is_empty() {
                    (Vec::new(), Verdict::External)
                } else {
                    (ids, Verdict::Precise)
                };
            }
            return (Vec::new(), Verdict::External);
        }
        // Module-qualified free fn.
        let ids = self.tab.free_fns_in(&name, &qual);
        if ids.is_empty() {
            (Vec::new(), Verdict::External)
        } else {
            (ids, Verdict::Precise)
        }
    }

    fn push_call(&mut self, name: String, line: u32, targets: Vec<FnId>, verdict: Verdict) {
        let held: Vec<(String, u32)> = self
            .held
            .iter()
            .map(|h| (h.canonical.clone(), h.line))
            .collect();
        let shielded = !self.shields.is_empty();
        self.calls.push(CallSite {
            name,
            line,
            targets,
            verdict,
            shielded,
            held,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SourceFile;
    use crate::parser;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        let cxs: Vec<FileCx> = sources.iter().map(FileCx::new).collect();
        let parsed: Vec<(String, FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), parser::parse(cx)))
            .collect();
        let tab = SymTab::build(&parsed);
        CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace())
    }

    fn id_of(g: &CallGraph, display: &str) -> FnId {
        g.tab
            .fns
            .iter()
            .position(|f| f.display() == display)
            .unwrap_or_else(|| panic!("no fn {display}"))
    }

    #[test]
    fn two_hop_panic_reaches_through_files_with_a_chain() {
        let g = build(&[
            (
                "crates/serve/src/engine.rs",
                "use pop_core::features::risky_decode;\n\
                 impl Engine {\n  pub fn handle(&self) { risky_decode(7); }\n}",
            ),
            (
                "crates/core/src/features.rs",
                "pub fn risky_decode(x: usize) -> usize { inner(x) }\n\
                 fn inner(x: usize) -> usize { SOME[x] }",
            ),
        ]);
        let root = id_of(&g, "Engine::handle");
        let target = id_of(&g, "inner");
        assert!(!g.nodes[target].facts.panic_sites.is_empty());
        let parents = g.reachable(&[root], true);
        assert!(parents.contains_key(&target));
        let chain = g.chain(&parents, target);
        assert_eq!(chain, vec!["Engine::handle", "risky_decode", "inner"]);
    }

    #[test]
    fn shielded_edges_block_panic_traversal_but_not_blocking() {
        let g = build(&[(
            "crates/serve/src/engine.rs",
            "impl Replica {\n  fn run(&self) { let r = std::panic::catch_unwind(|| self.step()); consume(r); }\n  fn step(&self) { self.x.unwrap(); }\n}\nfn consume(r: usize) {}",
        )]);
        let root = id_of(&g, "Replica::run");
        let step = id_of(&g, "Replica::step");
        let shielded_view = g.reachable(&[root], true);
        assert!(
            !shielded_view.contains_key(&step),
            "shield must cut the panic BFS"
        );
        let full_view = g.reachable(&[root], false);
        assert!(full_view.contains_key(&step), "other rules follow the edge");
    }

    #[test]
    fn typed_receivers_resolve_precisely_and_foreign_ones_externally() {
        let g = build(&[(
            "crates/core/src/model.rs",
            "pub struct Model { inner: Mutex<State> }\n\
             pub struct State;\n\
             impl State { pub fn step(&self) {} }\n\
             impl Model {\n  pub fn tick(&self) { self.inner.lock().step(); }\n  pub fn noise(&self) { let v = Vec::new(); v.len(); }\n}",
        )]);
        let tick = id_of(&g, "Model::tick");
        let step = id_of(&g, "State::step");
        let step_call = g.nodes[tick]
            .calls
            .iter()
            .find(|c| c.name == "step")
            .expect("step call recorded");
        assert_eq!(step_call.verdict, Verdict::Precise);
        assert_eq!(step_call.targets, vec![step]);
        let noise = id_of(&g, "Model::noise");
        assert!(g.nodes[noise]
            .calls
            .iter()
            .filter(|c| c.name == "len")
            .all(|c| c.verdict == Verdict::External));
    }

    #[test]
    fn unknown_receivers_over_approximate_to_name_matches() {
        let g = build(&[(
            "crates/core/src/model.rs",
            "pub struct A;\nimpl A { pub fn work(&self) {} }\n\
             pub struct B;\nimpl B { pub fn work(&self) {} }\n\
             pub fn dispatch(x: T) { x.work(); }",
        )]);
        let dispatch = id_of(&g, "dispatch");
        let call = &g.nodes[dispatch].calls[0];
        assert_eq!(call.verdict, Verdict::Approx);
        assert_eq!(call.targets.len(), 2, "both candidates kept");
    }

    #[test]
    fn determinism_facts_and_fnv_roots_are_recorded() {
        let g = build(&[(
            "crates/core/src/dataset.rs",
            "impl Corpus {\n  pub fn fingerprint(&self) -> u64 { let h = Fnv1a::new(); helper(); 0 }\n}\n\
             fn helper() { let t = std::time::Instant::now(); use1(t); }\nfn use1(t: usize) {}",
        )]);
        let fp = id_of(&g, "Corpus::fingerprint");
        let helper = id_of(&g, "helper");
        assert!(g.nodes[fp].facts.uses_fnv);
        assert_eq!(g.nodes[helper].facts.wall_clock.len(), 1);
        let parents = g.reachable(&[fp], false);
        assert!(parents.contains_key(&helper));
    }

    #[test]
    fn guard_returning_helper_charges_callers_with_the_lock() {
        let g = build(&[(
            "crates/serve/src/registry.rs",
            "impl Registry {\n  fn lock(&self) -> MutexGuard<'_, Inner> { self.inner.lock() }\n  fn use_it(&self) { let g = self.lock(); g.touch(); }\n}",
        )]);
        let lockfn = id_of(&g, "Registry::lock");
        assert_eq!(
            g.nodes[lockfn].facts.returns_guard_of.as_deref(),
            Some("serve.registry.inner")
        );
        let use_it = id_of(&g, "Registry::use_it");
        let touch = g.nodes[use_it]
            .calls
            .iter()
            .find(|c| c.name == "touch")
            .expect("touch call recorded");
        assert!(
            touch.held.iter().any(|(l, _)| l == "serve.registry.inner"),
            "held: {:?}",
            touch.held
        );
    }

    #[test]
    fn stats_count_verdicts_and_rate_reflects_them() {
        let g = build(&[(
            "crates/core/src/model.rs",
            "pub struct A;\nimpl A { pub fn f(&self) {} }\n\
             pub fn go(a: A) { a.f(); std::mem::drop(1); }",
        )]);
        assert_eq!(g.stats.precise, 1);
        assert!(g.stats.external >= 1);
        assert_eq!(g.stats.approx, 0);
        assert!(g.stats.resolution_rate() > 0.99);
    }

    #[test]
    fn dumps_emit_nodes_edges_and_stats() {
        let g = build(&[(
            "crates/core/src/model.rs",
            "pub fn a() { b(); }\npub fn b() {}",
        )]);
        let dot = g.to_dot();
        assert!(dot.contains("digraph pop_call_graph"));
        assert!(dot.contains("->"));
        let json = g.to_json();
        assert!(json.contains("\"edges\":["));
        assert!(json.contains("\"resolution_rate\""));
    }
}
