//! `pop-lint` CLI: lints the workspace, prints ranked findings and the
//! greppable summary line, exits nonzero on any violation.
//!
//! ```text
//! cargo run -p pop-lint                        # lint, exit 1 on findings
//! cargo run -p pop-lint -- --json report.json  # also write the LintReport
//! cargo run -p pop-lint -- --graph-out g.dot   # dump the call graph
//!                                              # (.json for the JSON form)
//! cargo run -p pop-lint -- --write-inventories # regenerate the committed
//!                                              # UNSAFE_INVENTORY.md and
//!                                              # OBS_NAMES.md, then re-lint
//! cargo run -p pop-lint -- --root <dir>        # explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut graph_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut write_inventories = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--graph-out" => graph_path = args.next().map(PathBuf::from),
            "--trace-out" => trace_path = args.next().map(PathBuf::from),
            "--write-inventories" => write_inventories = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: pop-lint [--root DIR] [--json FILE] [--graph-out FILE.{{dot,json}}] [--trace-out FILE] [--write-inventories]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pop-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("pop-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    if trace_path.is_some() {
        pop_obs::enable_tracing();
    }
    let started = std::time::Instant::now();
    let (mut report, mut graph) = match pop_lint::run_workspace_graph(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pop-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_inventories {
        if let Err(e) = pop_lint::write_inventories(&root, &report) {
            eprintln!("pop-lint: writing inventories failed: {e}");
            return ExitCode::from(2);
        }
        eprintln!("pop-lint: wrote UNSAFE_INVENTORY.md and OBS_NAMES.md; re-linting");
        (report, graph) = match pop_lint::run_workspace_graph(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pop-lint: rescan failed: {e}");
                return ExitCode::from(2);
            }
        };
    }

    if let Some(path) = json_path {
        match report.to_validated_json() {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("pop-lint: writing {} failed: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            Err(e) => {
                eprintln!("pop-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = graph_path {
        let dump = if path.extension().is_some_and(|e| e == "dot") {
            graph.to_dot()
        } else {
            graph.to_json()
        };
        if let Err(e) = std::fs::write(&path, dump) {
            eprintln!("pop-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = trace_path {
        // Self-timing through the same span machinery the workspace
        // uses: `lint_graph_build` / `lint_graph_rules` land in the
        // report CI archives next to the findings.
        let run = pop_obs::RunReport::capture("pop_lint", started, pop_obs::global());
        if let Err(e) = run.write_json(&path) {
            eprintln!("pop-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        let ns = |name: &str| {
            pop_obs::find_span(&run.spans, name)
                .map(|n| n.total_ns)
                .unwrap_or(0)
        };
        eprintln!(
            "trace: graph build {:.1}ms, graph rules {:.1}ms ({})",
            ns("lint_graph_build") as f64 / 1e6,
            ns("lint_graph_rules") as f64 / 1e6,
            path.display()
        );
    }

    print!("{}", report.render());
    let s = graph.stats;
    println!(
        "call graph: {} fns, {} call sites, {} edges, {:.1}% resolved",
        s.fns,
        s.call_sites,
        s.edges,
        100.0 * s.resolution_rate()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
