//! A small Rust lexer — comments, strings, identifiers, punctuation — in
//! the same hand-rolled idiom as `pop-obs`'s JSON parser.
//!
//! This is deliberately *not* a parser: the rule engines in
//! [`crate::rules`] only need to know, for every byte of a source file,
//! whether it is comment, string-literal or code, which identifier it
//! belongs to, and on which line it sits. A token stream with accurate
//! comment/string boundaries is enough to answer all five rule families
//! without a syntax tree, and it can never fall over on code the real
//! compiler accepts (worst case a rule sees an odd token sequence and
//! stays silent).

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal (split on `.` — good enough for the rules).
    Num,
    /// One punctuation byte (`.`, `(`, `{`, `!`, …).
    Punct,
    /// `// …` to end of line (including doc comments).
    LineComment,
    /// `/* … */`, nesting honoured (including doc comments).
    BlockComment,
}

/// One token: kind, byte range and 1-based source line of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: Kind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Tokenizes `src`. Unterminated strings/comments are tolerated (the token
/// runs to end of input) so a half-edited file still lints.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::LineComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: Kind::BlockComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'"' => {
                i = lex_string(bytes, i, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'r' | b'b' if raw_or_byte_string_len(bytes, i).is_some() => {
                // r"..", r#".."#, b"..", br#".."# — and b'..' byte chars.
                let (kind, end) = lex_prefixed_literal(bytes, i, &mut line);
                i = end;
                toks.push(Tok {
                    kind,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident run
                // NOT followed by a closing `'`.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let is_lifetime = j > i + 1 && bytes.get(j) != Some(&b'\'');
                if is_lifetime {
                    i = j;
                    toks.push(Tok {
                        kind: Kind::Lifetime,
                        start,
                        end: i,
                        line: start_line,
                    });
                } else {
                    i = lex_char(bytes, i);
                    toks.push(Tok {
                        kind: Kind::Char,
                        start,
                        end: i,
                        line: start_line,
                    });
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b if b.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            _ => {
                // One punctuation byte. A non-ASCII scalar (only ever
                // inside comments/strings in real Rust, but the lexer must
                // stay total) is consumed whole — a span that splits a
                // UTF-8 sequence would make `Tok::text` panic.
                i += 1;
                if b >= 0x80 {
                    while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: Kind::Punct,
                    start,
                    end: i,
                    line: start_line,
                });
            }
        }
    }
    toks
}

/// Length check for `r"`, `r#`, `b"`, `b'`, `br"`, `br#` prefixes at `i`;
/// `None` means plain identifier territory.
fn raw_or_byte_string_len(bytes: &[u8], i: usize) -> Option<usize> {
    let rest = &bytes[i..];
    let after = |n: usize| rest.get(n).copied();
    match rest.first()? {
        b'r' => match after(1)? {
            b'"' | b'#' => Some(1),
            _ => None,
        },
        b'b' => match after(1)? {
            b'"' | b'\'' => Some(1),
            b'r' => match after(2)? {
                b'"' | b'#' => Some(2),
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Lexes a literal starting with an `r`/`b`/`br` prefix. Returns the token
/// kind and the end offset.
fn lex_prefixed_literal(bytes: &[u8], start: usize, line: &mut u32) -> (Kind, usize) {
    let mut i = start;
    let mut raw = false;
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        if bytes[i] == b'r' {
            raw = true;
        }
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // b'x' byte literal.
        return (Kind::Char, lex_char(bytes, i));
    }
    if raw {
        // Count the `#`s, find the closing `"#…#`.
        let mut hashes = 0usize;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if bytes.get(i) == Some(&b'"') {
            i += 1;
            loop {
                match bytes.get(i) {
                    None => break,
                    Some(b'\n') => {
                        *line += 1;
                        i += 1;
                    }
                    Some(b'"') => {
                        let close = &bytes[i + 1..];
                        if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                            i += 1 + hashes;
                            break;
                        }
                        i += 1;
                    }
                    Some(_) => i += 1,
                }
            }
        }
        (Kind::Str, i)
    } else {
        // b"..." — same body rules as a plain string.
        (Kind::Str, lex_string(bytes, i, line))
    }
}

/// Lexes a `"…"` body starting at the opening quote; returns the offset
/// just past the closing quote.
fn lex_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    // An escape as the very last byte steps past the end; clamp so the
    // unterminated-literal token stays a valid slice.
    i.min(bytes.len())
}

/// Lexes a `'…'` char/byte literal starting at the quote.
fn lex_char(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // stray quote; don't swallow the file
            _ => i += 1,
        }
    }
    // Same trailing-escape overrun as `lex_string`.
    i.min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_strings_and_code_are_separated() {
        let src = "let s = \"a // not a comment\"; // real\n/* block\n*/ fn f() {}";
        let ks = kinds(src);
        assert!(ks.contains(&(Kind::Str, "\"a // not a comment\"".into())));
        assert!(ks.contains(&(Kind::LineComment, "// real".into())));
        assert!(ks.contains(&(Kind::BlockComment, "/* block\n*/".into())));
        assert!(ks.contains(&(Kind::Ident, "fn".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ks.contains(&(Kind::Lifetime, "'a".into())));
        assert!(ks.contains(&(Kind::Char, "'x'".into())));
        assert!(ks.contains(&(Kind::Char, "'\\n'".into())));
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_token() {
        let src = r##"let a = r#"raw "quoted" body"#; let b = b"bytes"; let c = br#"x"#;"##;
        let ks = kinds(src);
        assert!(ks.contains(&(Kind::Str, r##"r#"raw "quoted" body"#"##.into())));
        assert!(ks.contains(&(Kind::Str, "b\"bytes\"".into())));
        assert!(ks.contains(&(Kind::Str, "br#\"x\"#".into())));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* x\ny */\nb \"s\ns\" c";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let ks = kinds("/* a /* b */ c */ x");
        assert_eq!(ks[0], (Kind::BlockComment, "/* a /* b */ c */".into()));
        assert_eq!(ks[1], (Kind::Ident, "x".into()));
    }

    #[test]
    fn unterminated_tokens_do_not_panic() {
        assert!(!lex("\"never closed").is_empty());
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }
}
