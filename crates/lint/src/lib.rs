//! `pop-lint`: workspace-aware static analysis for the invariants no
//! compiler checks — determinism of fingerprint/cache-key code, a
//! documented-and-inventoried `unsafe` surface, panic-free serve/exec hot
//! paths, a canonical metric/span name registry, and a declared mutex
//! order.
//!
//! Zero dependencies beyond `pop-obs` (whose hand-rolled JSON writer and
//! parser serialize and self-validate the [`report::LintReport`]). Runs
//! as `cargo run -p pop-lint` and as a library (`lint_files`) for
//! fixture tests.

pub mod context;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symtab;

use context::{AllowLedger, FileCx, SourceFile};
use report::{AllowEntry, Finding, LintReport};
use std::io;
use std::path::{Path, PathBuf};

/// A lock-receiver alias: in files ending with `file_suffix`, a `.lock()`
/// receiver whose final segment is one of `receivers` is the lock named
/// `canonical`.
#[derive(Debug, Clone)]
pub struct LockAlias {
    pub file_suffix: String,
    pub receivers: Vec<String>,
    pub canonical: String,
}

/// Rule scoping: which files each rule family applies to, the declared
/// lock order, and the receiver→lock alias table.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Determinism roots by fn name: anything these fns reach (plus any fn
    /// folding a `Fnv1a`) may not read wall clocks or iterate
    /// order-sensitive collections.
    pub determinism_roots: Vec<String>,
    /// Hot-loop roots `(file suffix, fn name)`: anything these fns reach
    /// may not block (locks, condvar waits, channel recv, file I/O).
    pub hot_loop_roots: Vec<(String, String)>,
    /// Request-handling / queue hot-path files (suffix match): fns defined
    /// here are panic-rule roots — nothing they reach may panic.
    pub panic_files: Vec<String>,
    /// Path prefixes whose `.lock()` sites feed the lock-order check.
    pub lock_prefixes: Vec<String>,
    /// Path prefixes excluded from metric/span name extraction (the obs
    /// substrate itself, and this crate's fixtures).
    pub names_exclude_prefixes: Vec<String>,
    /// Declared outer→inner lock order, by canonical name.
    pub lock_order: Vec<String>,
    pub lock_aliases: Vec<LockAlias>,
}

impl LintConfig {
    /// The workspace's own scoping — the config `cargo run -p pop-lint`
    /// uses.
    pub fn workspace() -> Self {
        let alias = |file_suffix: &str, receivers: &[&str], canonical: &str| LockAlias {
            file_suffix: file_suffix.to_string(),
            receivers: receivers.iter().map(|r| r.to_string()).collect(),
            canonical: canonical.to_string(),
        };
        LintConfig {
            determinism_roots: vec!["fingerprint".into(), "baseline_fingerprint".into()],
            hot_loop_roots: vec![("crates/serve/src/engine.rs".into(), "worker_loop".into())],
            panic_files: vec![
                "crates/serve/src/engine.rs".into(),
                "crates/serve/src/queue.rs".into(),
                "crates/serve/src/registry.rs".into(),
                "crates/serve/src/lib.rs".into(),
                "crates/exec/src/queue.rs".into(),
                "crates/exec/src/parked.rs".into(),
                // The HTTP connection handlers: a panic here kills a
                // connection worker, so the whole request path is rooted.
                "crates/http/src/server.rs".into(),
                "crates/http/src/service.rs".into(),
            ],
            lock_prefixes: vec![
                "crates/exec/src/".into(),
                "crates/serve/src/".into(),
                // The model mutex lives in core; its acquisition sites must
                // feed the cross-fn order check so serve/exec callers are
                // charged with `core.forecaster.model`.
                "crates/core/src/forecaster.rs".into(),
            ],
            names_exclude_prefixes: vec!["crates/obs/".into(), "crates/lint/".into()],
            // Outer→inner: the registry may reach into a model and the
            // model may use exec primitives, never the reverse.
            lock_order: vec![
                "serve.registry.inner".into(),
                "core.forecaster.model".into(),
                "exec.queue.state".into(),
                "exec.pool.state".into(),
                "exec.scoped.slot".into(),
            ],
            lock_aliases: vec![
                alias(
                    "crates/exec/src/queue.rs",
                    &["state", "st"],
                    "exec.queue.state",
                ),
                alias(
                    "crates/exec/src/parked.rs",
                    &["state", "st"],
                    "exec.pool.state",
                ),
                alias(
                    "crates/exec/src/scoped.rs",
                    &["slots", "slot"],
                    "exec.scoped.slot",
                ),
                // `Registry::lock(&self)` wraps `self.inner.lock()`, so a
                // bare `self.lock()` in this file acquires the same mutex.
                alias(
                    "crates/serve/src/registry.rs",
                    &["inner", "self"],
                    "serve.registry.inner",
                ),
                alias(
                    "crates/serve/src/registry.rs",
                    &["model"],
                    "core.forecaster.model",
                ),
                alias(
                    "crates/serve/src/engine.rs",
                    &["model"],
                    "core.forecaster.model",
                ),
                alias(
                    "crates/core/src/forecaster.rs",
                    &["inner", "self"],
                    "core.forecaster.model",
                ),
            ],
        }
    }

    pub fn in_panic_scope(&self, rel_path: &str) -> bool {
        self.panic_files.iter().any(|f| rel_path.ends_with(f))
    }

    pub fn in_lock_scope(&self, rel_path: &str) -> bool {
        self.lock_prefixes.iter().any(|p| rel_path.starts_with(p))
    }

    pub fn in_names_scope(&self, rel_path: &str) -> bool {
        !self
            .names_exclude_prefixes
            .iter()
            .any(|p| rel_path.starts_with(p))
    }

    /// Canonical lock name for a `.lock()` receiver chain in `rel_path`.
    pub fn canonical_lock(&self, rel_path: &str, receiver: &str) -> String {
        let last = receiver.rsplit('.').next().unwrap_or(receiver);
        for a in &self.lock_aliases {
            if rel_path.ends_with(&a.file_suffix)
                && a.receivers.iter().any(|r| r == last || r == receiver)
            {
                return a.canonical.clone();
            }
        }
        if receiver.is_empty() {
            "unknown".to_string()
        } else {
            receiver.to_string()
        }
    }
}

/// The committed inventories the lint diffs against.
#[derive(Debug, Clone, Default)]
pub struct Inventories {
    pub unsafe_sites: Vec<String>,
    pub obs_names: Vec<String>,
}

impl Inventories {
    /// Parses an inventory markdown file: entries are `- ` bullet lines,
    /// everything else is prose.
    pub fn parse_md(text: &str) -> Vec<String> {
        text.lines()
            .filter_map(|l| l.strip_prefix("- "))
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    }
}

/// Lints a set of in-memory files. The library entry point fixture tests
/// and [`run_workspace`] both go through.
pub fn lint_files(files: &[SourceFile], cfg: &LintConfig, inv: &Inventories) -> LintReport {
    lint_files_graph(files, cfg, inv).0
}

/// [`lint_files`] plus the call graph it was computed on (for
/// `--graph-out` dumps and the lint bench).
pub fn lint_files_graph(
    files: &[SourceFile],
    cfg: &LintConfig,
    inv: &Inventories,
) -> (LintReport, graph::CallGraph) {
    let mut report = LintReport::default();
    let mut unsafe_sites: Vec<rules::unsafe_audit::UnsafeSite> = Vec::new();
    let mut obs_names: Vec<rules::names::ObsName> = Vec::new();

    let cxs: Vec<FileCx> = files.iter().map(FileCx::new).collect();
    let mut ledgers: Vec<(String, AllowLedger)> = cxs
        .iter()
        .map(|cx| (cx.file.rel_path.clone(), AllowLedger::new(&cx.allows)))
        .collect();

    // Per-file syntactic passes.
    for (cx, (_, ledger)) in cxs.iter().zip(ledgers.iter_mut()) {
        rules::locks::check(cx, cfg, ledger, &mut report.findings);
        rules::unsafe_audit::check(cx, &mut report.findings, &mut unsafe_sites);
        rules::names::extract(cx, cfg, &mut obs_names);
        for a in &cx.allows {
            report.allows.push(AllowEntry {
                rule: a.rule.clone(),
                file: cx.file.rel_path.clone(),
                line: a.line,
            });
        }
    }

    // Interprocedural passes: parse items, build the symbol table and the
    // call graph, then run the reachability rules on it.
    let graph = {
        let _span = pop_obs::span!("lint_graph_build");
        let parsed: Vec<(String, parser::FileItems)> = cxs
            .iter()
            .map(|cx| (cx.file.rel_path.clone(), parser::parse(cx)))
            .collect();
        let tab = symtab::SymTab::build(&parsed);
        graph::CallGraph::build(&cxs, &parsed, tab, cfg)
    };
    {
        let _span = pop_obs::span!("lint_graph_rules");
        rules::determinism::check(&graph, cfg, &mut ledgers, &mut report.findings);
        rules::panic_path::check(&graph, cfg, &mut ledgers, &mut report.findings);
        rules::blocking::check(&graph, cfg, &mut ledgers, &mut report.findings);
        rules::locks::check_cross(&graph, cfg, &mut ledgers, &mut report.findings);
    }

    rules::unsafe_audit::diff_inventory(&unsafe_sites, &inv.unsafe_sites, &mut report.findings);
    {
        let mut lookup = rules::names::ledger_adapter(&mut ledgers);
        rules::names::diff_inventory(
            &obs_names,
            &inv.obs_names,
            &mut lookup,
            &mut report.findings,
        );
    }

    // An allow that suppressed nothing is itself a finding: stale escape
    // hatches re-open holes silently.
    for (cx, (file, ledger)) in cxs.iter().zip(&ledgers) {
        for (a, &used) in cx.allows.iter().zip(&ledger.used) {
            if !used {
                report.findings.push(Finding::new(
                    "unused_allow",
                    file,
                    a.line,
                    None,
                    format!("`lint: allow({})` suppresses nothing; remove it", a.rule),
                ));
            }
        }
    }

    report.unsafe_sites = unsafe_sites
        .iter()
        .map(rules::unsafe_audit::UnsafeSite::entry)
        .collect();
    report.unsafe_sites.sort();
    report.obs_names = rules::names::regenerate(&obs_names);
    report.files_scanned = files.len();
    report.finalize();
    (report, graph)
}

/// Collects the workspace's lintable sources: `crates/*/{src,tests,benches}`
/// plus the facade's `src/`, `examples/` and `tests/`. Shims and `target/`
/// are out of scope.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            for sub in ["src", "tests", "benches"] {
                collect_rs(&dir.join(sub), &mut paths)?;
            }
        }
    }
    for sub in ["src", "examples", "tests"] {
        collect_rs(&root.join(sub), &mut paths)?;
    }
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel, std::fs::read_to_string(&p)?));
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads the committed inventories from `root` (absent files mean empty).
pub fn read_inventories(root: &Path) -> Inventories {
    let read = |name: &str| {
        std::fs::read_to_string(root.join(name))
            .map(|t| Inventories::parse_md(&t))
            .unwrap_or_default()
    };
    Inventories {
        unsafe_sites: read("UNSAFE_INVENTORY.md"),
        obs_names: read("OBS_NAMES.md"),
    }
}

/// Full workspace run with the workspace config and committed inventories.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    Ok(run_workspace_graph(root)?.0)
}

/// [`run_workspace`] plus the call graph (for `--graph-out`).
pub fn run_workspace_graph(root: &Path) -> io::Result<(LintReport, graph::CallGraph)> {
    let files = workspace_files(root)?;
    Ok(lint_files_graph(
        &files,
        &LintConfig::workspace(),
        &read_inventories(root),
    ))
}

/// Regenerates `UNSAFE_INVENTORY.md` and `OBS_NAMES.md` from a report.
pub fn write_inventories(root: &Path, report: &LintReport) -> io::Result<()> {
    let mut unsafe_md = String::from(
        "# Unsafe inventory\n\n\
         Every `unsafe` site in non-test workspace code, regenerated by\n\
         `cargo run -p pop-lint -- --write-inventories` and diffed on every\n\
         lint run. Entries are `file · context · SAFETY summary`; a new or\n\
         vanished site fails the lint until this file is re-committed.\n\n",
    );
    for entry in &report.unsafe_sites {
        unsafe_md.push_str(&format!("- {entry}\n"));
    }
    std::fs::write(root.join("UNSAFE_INVENTORY.md"), unsafe_md)?;

    let mut names_md = String::from(
        "# Observability name registry\n\n\
         The canonical metric/span name surface: every `counter`/`gauge`/\n\
         `histogram` registration and `span!` literal in the workspace,\n\
         regenerated by `cargo run -p pop-lint -- --write-inventories`.\n\
         `*` is a one-segment wildcard for `format!`-templated names. A\n\
         name not in this file is a typo until proven otherwise — dashboards\n\
         and downstream consumers key off these exact strings.\n\n",
    );
    for entry in &report.obs_names {
        names_md.push_str(&format!("- {entry}\n"));
    }
    std::fs::write(root.join("OBS_NAMES.md"), names_md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_md_parses_bullets_only() {
        let entries = Inventories::parse_md(
            "# Title\nprose line\n- counter pipeline.jobs\n-not a bullet\n- \n- span place\n",
        );
        assert_eq!(entries, vec!["counter pipeline.jobs", "span place"]);
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let files = vec![SourceFile::new(
            "crates/place/src/anneal.rs",
            "// lint: allow(wall_clock)\nfn f() {}\n",
        )];
        let report = lint_files(&files, &LintConfig::workspace(), &Inventories::default());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "unused_allow");
        assert_eq!(report.allows.len(), 1, "allow still inventoried");
    }

    #[test]
    fn used_allow_is_inventoried_but_not_a_finding() {
        let files = vec![SourceFile::new(
            "crates/core/src/dataset.rs",
            "pub fn fingerprint() -> u64 {\n  // lint: allow(wall_clock) — provenance\n  let t = std::time::SystemTime::now();\n  0\n}\n",
        )];
        let report = lint_files(&files, &LintConfig::workspace(), &Inventories::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allows.len(), 1);
    }

    #[test]
    fn cross_file_inventory_diffs_reach_the_report() {
        let files = vec![SourceFile::new(
            "crates/nn/src/quant.rs",
            "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller checked.\n  unsafe { *p }\n}\n",
        )];
        let inv = Inventories {
            unsafe_sites: vec![],
            obs_names: vec!["counter ghost.metric".into()],
        };
        let report = lint_files(&files, &LintConfig::workspace(), &inv);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"unsafe_inventory"), "{rules:?}");
        assert!(rules.contains(&"obs_name"), "{rules:?}");
        assert_eq!(report.unsafe_sites.len(), 1);
    }
}
