//! Per-file analysis context shared by every rule engine: the token
//! stream plus cheap structural facts — which tokens sit in test code,
//! which sit inside `use` statements, the enclosing function of every
//! token, and the `// lint: allow(rule)` escape hatches.

use crate::lexer::{lex, Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// One workspace source file, by workspace-relative path.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// `/`-separated path relative to the workspace root
    /// (e.g. `crates/core/src/dataset.rs`).
    pub rel_path: String,
    pub text: String,
}

impl SourceFile {
    pub fn new(rel_path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile {
            rel_path: rel_path.into(),
            text: text.into(),
        }
    }
}

/// A `// lint: allow(rule)` annotation found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule it suppresses (`wall_clock`, `panic_path`, …).
    pub rule: String,
    /// Line the annotation sits on.
    pub line: u32,
    /// Lines it suppresses: its own line, plus the next line carrying
    /// code when the annotation stands alone above a statement.
    pub targets: Vec<u32>,
}

/// The analysis context for one file.
pub struct FileCx<'a> {
    pub file: &'a SourceFile,
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Per-`toks` index: inside `#[cfg(test)]` / `#[test]` / `#[bench]`
    /// items (or the whole file, for `tests/` and `benches/` dirs).
    in_test: Vec<bool>,
    /// Per-`toks` index: inside a `use …;` statement.
    in_use: Vec<bool>,
    /// Per-`toks` index: enclosing fn, as an index into `fn_names`.
    fn_of: Vec<Option<u32>>,
    fn_names: Vec<String>,
    pub allows: Vec<Allow>,
}

impl<'a> FileCx<'a> {
    pub fn new(file: &'a SourceFile) -> Self {
        let toks = lex(&file.text);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, Kind::LineComment | Kind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let whole_file_test = file.rel_path.contains("/tests/")
            || file.rel_path.contains("/benches/")
            || file.rel_path.starts_with("tests/")
            || file.rel_path.starts_with("benches/");
        let in_test = if whole_file_test {
            vec![true; toks.len()]
        } else {
            mark_test_regions(&toks, &code, &file.text)
        };
        let in_use = mark_use_statements(&toks, &code, &file.text);
        let (fn_of, fn_names) = map_enclosing_fns(&toks, &code, &file.text);
        let allows = collect_allows(&toks, &code, &in_test, &file.text);
        FileCx {
            file,
            toks,
            code,
            in_test,
            in_use,
            fn_of,
            fn_names,
            allows,
        }
    }

    pub fn text(&self, tok: &Tok) -> &'a str {
        tok.text(&self.file.text)
    }

    /// Whether the token at `toks` index `i` is inside test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test[i]
    }

    /// Whether the token at `toks` index `i` is inside a `use` statement.
    pub fn is_use(&self, i: usize) -> bool {
        self.in_use[i]
    }

    /// Name of the function enclosing `toks` index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fn_of[i].map(|f| self.fn_names[f as usize].as_str())
    }

    /// Opaque id of the enclosing fn — distinguishes two fns that share a
    /// name (e.g. `lock` on two impls) for scan-boundary detection.
    pub fn fn_id(&self, i: usize) -> Option<u32> {
        self.fn_of[i]
    }

    /// The code token following `toks` index `i` (skipping comments).
    pub fn next_code(&self, i: usize) -> Option<usize> {
        let pos = self.code.partition_point(|&c| c <= i);
        self.code.get(pos).copied()
    }

    /// The code token preceding `toks` index `i` (skipping comments).
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let pos = self.code.partition_point(|&c| c < i);
        pos.checked_sub(1).map(|p| self.code[p])
    }
}

/// Marks tokens covered by `#[cfg(test)]`, `#[test]` or `#[bench]` items.
fn mark_test_regions(toks: &[Tok], code: &[usize], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut ranges: Vec<(usize, usize)> = Vec::new(); // toks-index ranges
    let mut c = 0usize; // cursor into `code`
    let mut pending = false;
    while c < code.len() {
        let i = code[c];
        let tok = &toks[i];
        if tok.kind == Kind::Punct
            && tok.text(src) == "#"
            && code.get(c + 1).is_some_and(|&j| toks[j].text(src) == "[")
        {
            // Collect the attribute's idents up to the matching `]`.
            let mut depth = 0usize;
            let mut idents: Vec<&str> = Vec::new();
            let mut d = c + 1;
            while d < code.len() {
                let t = &toks[code[d]];
                match (t.kind, t.text(src)) {
                    (Kind::Punct, "[") => depth += 1,
                    (Kind::Punct, "]") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (Kind::Ident, name) => idents.push(name),
                    _ => {}
                }
                d += 1;
            }
            let has = |n: &str| idents.contains(&n);
            let cfg_test = has("cfg") && has("test") && !has("not");
            let direct_test = !has("cfg") && (has("test") || has("bench"));
            if cfg_test || direct_test {
                pending = true;
            }
            c = d + 1;
            continue;
        }
        if pending {
            // The attributed item: runs to the matching `}` of its first
            // top-level `{`, or to a `;` if it has no body.
            let start = i;
            let mut depth = 0usize;
            let mut d = c;
            let mut end = code.len().saturating_sub(1);
            while d < code.len() {
                let t = &toks[code[d]];
                if t.kind == Kind::Punct {
                    match t.text(src) {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 && t.text(src) == "}" {
                                end = d;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end = d;
                            break;
                        }
                        _ => {}
                    }
                }
                d += 1;
            }
            ranges.push((start, code[end.min(code.len() - 1)]));
            pending = false;
            c = end + 1;
            continue;
        }
        c += 1;
    }
    for (a, b) in ranges {
        for (i, flag) in in_test.iter_mut().enumerate() {
            if i >= a && i <= b {
                *flag = true;
            }
        }
    }
    in_test
}

/// Marks tokens inside `use …;` statements (imports are not usages).
fn mark_use_statements(toks: &[Tok], code: &[usize], src: &str) -> Vec<bool> {
    let mut in_use = vec![false; toks.len()];
    let mut active = false;
    for (pos, &i) in code.iter().enumerate() {
        let tok = &toks[i];
        if !active && tok.kind == Kind::Ident && tok.text(src) == "use" {
            let starts_stmt = pos == 0
                || matches!(
                    toks[code[pos - 1]].text(src),
                    ";" | "{" | "}" | "]" | "pub" | ")"
                );
            if starts_stmt {
                active = true;
            }
        }
        if active {
            in_use[i] = true;
            if tok.kind == Kind::Punct && tok.text(src) == ";" {
                active = false;
            }
        }
    }
    in_use
}

/// Computes, for every token, the name of its innermost enclosing `fn`.
fn map_enclosing_fns(toks: &[Tok], code: &[usize], src: &str) -> (Vec<Option<u32>>, Vec<String>) {
    let mut fn_of = vec![None; toks.len()];
    let mut names: Vec<String> = Vec::new();
    let mut stack: Vec<(u32, usize)> = Vec::new(); // (name index, depth)
    let mut pending: Option<u32> = None;
    let mut depth = 0usize;
    let mut code_pos = 0usize;
    for (i, tok) in toks.iter().enumerate() {
        // Current innermost fn applies to this token (comments included,
        // so SAFETY comments attribute to the right context).
        fn_of[i] = stack.last().map(|&(f, _)| f);
        if matches!(tok.kind, Kind::LineComment | Kind::BlockComment) {
            continue;
        }
        debug_assert_eq!(code[code_pos], i);
        match (tok.kind, tok.text(src)) {
            (Kind::Ident, "fn") => {
                if let Some(&j) = code.get(code_pos + 1) {
                    if toks[j].kind == Kind::Ident {
                        names.push(toks[j].text(src).to_string());
                        pending = Some((names.len() - 1) as u32);
                    }
                }
            }
            (Kind::Punct, "{") => {
                depth += 1;
                if let Some(f) = pending.take() {
                    stack.push((f, depth));
                    fn_of[i] = Some(f);
                }
            }
            (Kind::Punct, "}") => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            // A `;` before the body: trait method declaration, no body.
            (Kind::Punct, ";") => pending = None,
            _ => {}
        }
        code_pos += 1;
    }
    (fn_of, names)
}

/// Collects `// lint: allow(rule)` annotations. An annotation suppresses
/// findings on its own line and — when it stands alone — on the next line
/// that carries code. The marker must open the comment (prose that merely
/// *mentions* the syntax is not an annotation), and test-only comments are
/// ignored (rules skip test code, so an allow there could never fire).
fn collect_allows(toks: &[Tok], code: &[usize], in_test: &[bool], src: &str) -> Vec<Allow> {
    let code_lines: BTreeSet<u32> = code.iter().map(|&i| toks[i].line).collect();
    let mut allows = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !matches!(tok.kind, Kind::LineComment | Kind::BlockComment) || in_test[i] {
            continue;
        }
        let text = tok.text(src);
        let opening = text.trim_start_matches(['/', '*', '!']).trim_start();
        if !opening.starts_with("lint: allow(") {
            continue;
        }
        let rest = &opening["lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if rule.is_empty() {
            continue;
        }
        let mut targets = vec![tok.line];
        if !code_lines.contains(&tok.line) {
            // Standalone comment: it covers the next code-bearing line.
            if let Some(&next) = code_lines.range(tok.line + 1..).next() {
                targets.push(next);
            }
        }
        allows.push(Allow {
            rule,
            line: tok.line,
            targets,
        });
    }
    allows
}

/// Suppression bookkeeping: which allows exist, which got used.
pub struct AllowLedger {
    /// (rule, line) → allow index, for the current file.
    by_target: BTreeMap<(String, u32), usize>,
    pub used: Vec<bool>,
}

impl AllowLedger {
    pub fn new(allows: &[Allow]) -> Self {
        let mut by_target = BTreeMap::new();
        for (idx, a) in allows.iter().enumerate() {
            for &t in &a.targets {
                by_target.insert((a.rule.clone(), t), idx);
            }
        }
        AllowLedger {
            by_target,
            used: vec![false; allows.len()],
        }
    }

    /// True (and marks the allow used) when `rule` at `line` is suppressed.
    pub fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        if let Some(&idx) = self.by_target.get(&(rule.to_string(), line)) {
            self.used[idx] = true;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            r#"
fn live() { work(); }

#[test]
fn unit() { assert!(true); }

#[cfg(test)]
mod tests {
    fn helper() { inner(); }
}

fn also_live() {}
"#,
        );
        let cx = FileCx::new(&file);
        let flag = |name: &str| {
            let i = cx
                .toks
                .iter()
                .position(|t| cx.text(t) == name)
                .unwrap_or_else(|| panic!("{name} not found"));
            cx.is_test(i)
        };
        assert!(!flag("work"));
        assert!(flag("assert"));
        assert!(flag("inner"));
        assert!(!flag("also_live"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "#[cfg(not(test))]\nfn shipping() { work(); }\n",
        );
        let cx = FileCx::new(&file);
        let i = cx.toks.iter().position(|t| cx.text(t) == "work").unwrap();
        assert!(!cx.is_test(i));
    }

    #[test]
    fn files_under_tests_dirs_are_wholly_test() {
        let file = SourceFile::new("crates/x/tests/integration.rs", "fn f() { g(); }");
        let cx = FileCx::new(&file);
        assert!((0..cx.toks.len()).all(|i| cx.is_test(i)));
    }

    #[test]
    fn enclosing_fn_names_are_tracked_through_nesting() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "fn outer() { let c = |x| { inner_marker(); }; }\nfn second() { other_marker(); }",
        );
        let cx = FileCx::new(&file);
        let ctx_of = |name: &str| {
            let i = cx.toks.iter().position(|t| cx.text(t) == name).unwrap();
            cx.enclosing_fn(i).map(str::to_string)
        };
        assert_eq!(ctx_of("inner_marker").as_deref(), Some("outer"));
        assert_eq!(ctx_of("other_marker").as_deref(), Some("second"));
    }

    #[test]
    fn use_statements_are_not_usage() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
        );
        let cx = FileCx::new(&file);
        let sites: Vec<bool> = cx
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| cx.text(t) == "Instant")
            .map(|(i, _)| cx.is_use(i))
            .collect();
        assert_eq!(sites, vec![true, false]);
    }

    #[test]
    fn allow_annotations_cover_their_own_and_the_next_code_line() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "// lint: allow(wall_clock) — provenance\nlet t = now();\nlet u = now(); // lint: allow(map_order)\n",
        );
        let cx = FileCx::new(&file);
        assert_eq!(cx.allows.len(), 2);
        assert_eq!(cx.allows[0].rule, "wall_clock");
        assert_eq!(cx.allows[0].targets, vec![1, 2]);
        assert_eq!(cx.allows[1].rule, "map_order");
        assert_eq!(cx.allows[1].targets, vec![3]);
        let mut ledger = AllowLedger::new(&cx.allows);
        assert!(ledger.suppresses("wall_clock", 2));
        assert!(!ledger.suppresses("wall_clock", 3));
        assert!(ledger.suppresses("map_order", 3));
        assert_eq!(ledger.used, vec![true, true]);
    }
}
