//! Lint findings and the [`LintReport`]: ranked human-readable rendering
//! plus a JSON form written with `pop-obs`'s hand-rolled JSON helpers and
//! self-validated by parsing it back.

use pop_obs::json::{self, Value};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `wall_clock`, `map_order`, `unsafe_doc`, `unsafe_inventory`,
    /// `panic_path`, `lock_order`, `obs_name`, `unused_allow`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    /// Enclosing function, or `-` at module scope.
    pub context: String,
    pub message: String,
    /// Call chain root → … → site for transitive findings (empty for
    /// findings at a rule root / syntactic findings).
    pub chain: Vec<String>,
}

impl Finding {
    pub fn new(
        rule: &str,
        file: &str,
        line: u32,
        context: Option<&str>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            context: context.unwrap_or("-").to_string(),
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches the call chain that makes a transitive finding reachable.
    pub fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }
}

/// Severity rank used to order findings: correctness-poisoning rules
/// first, hygiene last.
pub fn rank(rule: &str) -> u8 {
    match rule {
        "wall_clock" | "map_order" => 1,
        "unsafe_doc" | "unsafe_inventory" => 2,
        "panic_path" => 3,
        "lock_order" | "blocking" => 4,
        "obs_name" => 5,
        _ => 6, // unused_allow and anything future
    }
}

/// An `// lint: allow(rule)` escape hatch, inventoried in the report so
/// suppressions stay visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub line: u32,
}

/// Everything one lint pass produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    /// Every escape hatch in the scanned source, used or not.
    pub allows: Vec<AllowEntry>,
    /// Regenerated `UNSAFE_INVENTORY.md` entry lines.
    pub unsafe_sites: Vec<String>,
    /// Regenerated `OBS_NAMES.md` entry lines.
    pub obs_names: Vec<String>,
    pub files_scanned: usize,
}

impl LintReport {
    /// Sorts findings by (severity rank, file, line, rule).
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (rank(&a.rule), &a.file, a.line, &a.rule).cmp(&(
                rank(&b.rule),
                &b.file,
                b.line,
                &b.rule,
            ))
        });
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// The greppable one-line summary CI keys off.
    pub fn summary(&self) -> String {
        if self.findings.is_empty() {
            format!(
                "pop-lint: 0 findings — {} files scanned, {} unsafe sites, {} obs names, {} allows",
                self.files_scanned,
                self.unsafe_sites.len(),
                self.obs_names.len(),
                self.allows.len()
            )
        } else {
            let mut by_rule: Vec<(String, usize)> = Vec::new();
            for f in &self.findings {
                match by_rule.iter_mut().find(|(r, _)| *r == f.rule) {
                    Some((_, n)) => *n += 1,
                    None => by_rule.push((f.rule.clone(), 1)),
                }
            }
            let breakdown: Vec<String> = by_rule.iter().map(|(r, n)| format!("{n} {r}")).collect();
            format!(
                "pop-lint: {} findings ({})",
                self.findings.len(),
                breakdown.join(", ")
            )
        }
    }

    /// Human-readable rendering: ranked findings, then the allow
    /// inventory, then the summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "[{}] {}:{} ({}): {}\n",
                f.rule, f.file, f.line, f.context, f.message
            ));
            if f.chain.len() > 1 {
                out.push_str(&format!("  via {}\n", f.chain.join(" → ")));
            }
        }
        if !self.allows.is_empty() {
            out.push_str(&format!("suppressions ({}):\n", self.allows.len()));
            for a in &self.allows {
                out.push_str(&format!("  allow({}) {}:{}\n", a.rule, a.file, a.line));
            }
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Serializes the report with the `pop-obs` JSON writer.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"files_scanned\":{},",
            json::num(self.files_scanned as f64)
        ));
        s.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let chain: Vec<String> = f.chain.iter().map(|c| json::str_lit(c)).collect();
            s.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"context\":{},\"message\":{},\"chain\":[{}]}}",
                json::str_lit(&f.rule),
                json::str_lit(&f.file),
                json::num(f.line as f64),
                json::str_lit(&f.context),
                json::str_lit(&f.message),
                chain.join(",")
            ));
        }
        s.push_str("],\"allows\":[");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{}}}",
                json::str_lit(&a.rule),
                json::str_lit(&a.file),
                json::num(a.line as f64)
            ));
        }
        s.push_str("],\"unsafe_sites\":[");
        for (i, u) in self.unsafe_sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json::str_lit(u));
        }
        s.push_str("],\"obs_names\":[");
        for (i, n) in self.obs_names.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json::str_lit(n));
        }
        s.push_str("]}");
        s
    }

    /// Serializes and re-parses through the `pop-obs` JSON reader,
    /// checking the round trip carries every finding. Returns the JSON
    /// text on success.
    pub fn to_validated_json(&self) -> Result<String, String> {
        let text = self.to_json();
        let value = json::parse(&text).map_err(|e| format!("self-validation parse: {e}"))?;
        let findings = value
            .get("findings")
            .and_then(Value::as_array)
            .ok_or("self-validation: findings array missing")?;
        if findings.len() != self.findings.len() {
            return Err(format!(
                "self-validation: {} findings serialized, {} parsed back",
                self.findings.len(),
                findings.len()
            ));
        }
        for (f, v) in self.findings.iter().zip(findings) {
            let rule = v.get("rule").and_then(Value::as_str);
            let line = v.get("line").and_then(Value::as_u64);
            let chain = v.get("chain").and_then(Value::as_array).map(|a| a.len());
            if rule != Some(f.rule.as_str())
                || line != Some(f.line as u64)
                || chain != Some(f.chain.len())
            {
                return Err(format!(
                    "self-validation: finding {}:{} did not round-trip",
                    f.file, f.line
                ));
            }
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport {
            findings: vec![
                Finding::new("panic_path", "crates/b/src/x.rs", 9, Some("pop"), "unwrap"),
                Finding::new("wall_clock", "crates/a/src/y.rs", 4, None, "Instant::now"),
            ],
            allows: vec![AllowEntry {
                rule: "wall_clock".into(),
                file: "crates/a/src/y.rs".into(),
                line: 2,
            }],
            unsafe_sites: vec!["crates/nn/src/quant.rs dots_sse2 — SSE2 lanes".into()],
            obs_names: vec!["counter pipeline.jobs".into()],
            files_scanned: 2,
        };
        r.finalize();
        r
    }

    #[test]
    fn findings_rank_determinism_above_panics() {
        let r = sample();
        assert_eq!(r.findings[0].rule, "wall_clock");
        assert_eq!(r.findings[1].rule, "panic_path");
    }

    #[test]
    fn summary_counts_by_rule_and_is_greppable() {
        let r = sample();
        assert_eq!(
            r.summary(),
            "pop-lint: 2 findings (1 wall_clock, 1 panic_path)"
        );
        let clean = LintReport {
            files_scanned: 7,
            ..Default::default()
        };
        assert!(clean.summary().starts_with("pop-lint: 0 findings"));
    }

    #[test]
    fn json_round_trips_through_pop_obs_parser() {
        let r = sample();
        let text = r.to_validated_json().expect("round trip");
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("files_scanned").and_then(Value::as_u64),
            Some(2),
            "files_scanned survives"
        );
        let allows = v.get("allows").and_then(Value::as_array).unwrap();
        assert_eq!(allows.len(), 1);
        assert_eq!(
            allows[0].get("rule").and_then(Value::as_str),
            Some("wall_clock")
        );
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let mut r = LintReport::default();
        r.findings.push(Finding::new(
            "obs_name",
            "crates/a/src/y.rs",
            1,
            None,
            "name \"quoted\\path\"\nnewline",
        ));
        let text = r.to_validated_json().expect("round trip");
        let v = json::parse(&text).unwrap();
        let f = &v.get("findings").and_then(Value::as_array).unwrap()[0];
        assert_eq!(
            f.get("message").and_then(Value::as_str),
            Some("name \"quoted\\path\"\nnewline")
        );
    }
}
