//! The workspace symbol table: every parsed fn, type and `use` alias,
//! indexed for the call resolution in [`crate::graph`].
//!
//! Resolution is heuristic but *directionally sound* for the reachability
//! rules: when a receiver type cannot be inferred, a method call
//! over-approximates to every workspace method of that name (extra edges
//! can only create extra findings, never hide one); only calls proven to
//! target non-workspace code (std paths, receivers typed to foreign
//! types, constructors) resolve to nothing.

use crate::parser::{FileItems, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// Index of one fn in [`SymTab::fns`] — the node id of the call graph.
pub type FnId = usize;

/// One fn with its defining file attached.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Module path derived from the file location
    /// (`crates/core/src/dataset.rs` → `["pop_core", "dataset"]`).
    pub module: Vec<String>,
    /// Index of the file in the scanned file list.
    pub file_idx: usize,
}

impl FnDef {
    /// Display name for findings and chains: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.item.self_ty {
            Some(t) => format!("{t}::{}", self.item.name),
            None => match &self.item.trait_ty {
                Some(t) => format!("<{t}>::{}", self.item.name),
                None => self.item.name.clone(),
            },
        }
    }

    /// Fully-qualified name for the graph dump.
    pub fn qualified(&self) -> String {
        let mut q = self.module.join("::");
        if !q.is_empty() {
            q.push_str("::");
        }
        q.push_str(&self.display());
        q
    }
}

/// The whole-workspace symbol table.
#[derive(Debug, Default)]
pub struct SymTab {
    pub fns: Vec<FnDef>,
    /// Workspace type names (structs, enums, unions).
    pub types: BTreeSet<String>,
    pub traits: BTreeSet<String>,
    /// `(type, field)` → head type name.
    pub fields: BTreeMap<(String, String), String>,
    /// Free fns by name.
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Inherent/trait-impl methods by `(self type, name)`.
    methods_by_type: BTreeMap<(String, String), Vec<FnId>>,
    /// All methods (inherent, trait impls and trait defaults) by name.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Trait methods by `(trait, name)` — impls and defaults.
    trait_methods: BTreeMap<(String, String), Vec<FnId>>,
}

/// Derives a module path from a workspace-relative file path. `mod.rs` and
/// `lib.rs`/`main.rs` collapse into their directory; crate directories map
/// to their lib target name (`crates/core` → `pop_core`).
pub fn module_path(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let mut out: Vec<String> = Vec::new();
    let rest: &[&str] = if parts.len() >= 2 && parts[0] == "crates" {
        out.push(format!("pop_{}", parts[1].replace('-', "_")));
        &parts[2..]
    } else {
        out.push("painting_on_placement".to_string());
        &parts[..]
    };
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if !last {
            if *seg != "src" {
                out.push(seg.to_string());
            }
            continue;
        }
        let stem = seg.strip_suffix(".rs").unwrap_or(seg);
        if !matches!(stem, "lib" | "main" | "mod") {
            out.push(stem.to_string());
        }
    }
    out
}

impl SymTab {
    /// Builds the table from per-file parse results (parallel to the
    /// scanned file list).
    pub fn build(files: &[(String, FileItems)]) -> Self {
        let mut tab = SymTab::default();
        for (file_idx, (rel_path, items)) in files.iter().enumerate() {
            let module = module_path(rel_path);
            for t in &items.types {
                tab.types.insert(t.name.clone());
                for (fname, fty) in &t.fields {
                    if let Some(ty) = fty {
                        tab.fields
                            .insert((t.name.clone(), fname.clone()), ty.clone());
                    }
                }
            }
            for tr in &items.traits {
                tab.traits.insert(tr.clone());
            }
            for f in &items.fns {
                if f.is_test {
                    continue;
                }
                let id = tab.fns.len();
                tab.fns.push(FnDef {
                    item: f.clone(),
                    file: rel_path.clone(),
                    module: module.clone(),
                    file_idx,
                });
                let f = &tab.fns[id].item;
                // Bodyless trait method declarations are kept as nodes but
                // not indexed: dispatch resolves to impls (and default
                // bodies), never to a signature.
                if f.self_ty.is_none() && f.trait_ty.is_some() && f.body.is_none() {
                    continue;
                }
                match (&f.self_ty, &f.trait_ty) {
                    (Some(ty), _) => {
                        tab.methods_by_type
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        tab.methods_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(id);
                    }
                    (None, Some(_)) => {
                        // Trait default method.
                        tab.methods_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(id);
                    }
                    (None, None) => {
                        tab.free_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                }
                if let Some(tr) = &tab.fns[id].item.trait_ty {
                    tab.trait_methods
                        .entry((tr.clone(), tab.fns[id].item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        tab
    }

    /// Whether `name` is a workspace type.
    pub fn is_type(&self, name: &str) -> bool {
        self.types.contains(name)
    }

    pub fn is_trait(&self, name: &str) -> bool {
        self.traits.contains(name)
    }

    /// Head type of `ty.field`, if known.
    pub fn field_type(&self, ty: &str, field: &str) -> Option<&str> {
        self.fields
            .get(&(ty.to_string(), field.to_string()))
            .map(String::as_str)
    }

    /// Methods named `name` on workspace type `ty` (inherent or trait
    /// impls); falls back to trait defaults of that name when the type
    /// defines none.
    pub fn methods_on(&self, ty: &str, name: &str) -> Vec<FnId> {
        if let Some(ids) = self
            .methods_by_type
            .get(&(ty.to_string(), name.to_string()))
        {
            return ids.clone();
        }
        // The type may get the method from a trait's default body.
        self.trait_defaults(name)
    }

    /// Trait default-body fns named `name` (self_ty None, trait_ty Some).
    pub fn trait_defaults(&self, name: &str) -> Vec<FnId> {
        self.methods_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.fns[id].item.self_ty.is_none())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every workspace method named `name` — the over-approximation set
    /// for unknown receivers.
    pub fn methods_named(&self, name: &str) -> Vec<FnId> {
        self.methods_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Implementations (and defaults) of `trait::name`.
    pub fn trait_impls(&self, tr: &str, name: &str) -> Vec<FnId> {
        self.trait_methods
            .get(&(tr.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Free fns named `name`, preferring same-file then same-crate
    /// candidates when several crates define the name.
    pub fn free_fns(&self, name: &str, from_file: &str) -> Vec<FnId> {
        let Some(ids) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let same_file: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&id| self.fns[id].file == from_file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let crate_of = |p: &str| module_path(p).first().cloned().unwrap_or_default();
        let from_crate = crate_of(from_file);
        let same_crate: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&id| self.fns[id].module.first() == Some(&from_crate))
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        ids.clone()
    }

    /// Free fns named `name` whose module path ends with `qualifier`
    /// (already alias-expanded); empty qualifier matches all.
    pub fn free_fns_in(&self, name: &str, qualifier: &[String]) -> Vec<FnId> {
        let Some(ids) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        if qualifier.is_empty() {
            return ids.clone();
        }
        let matched: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&id| self.fns[id].module.ends_with(qualifier))
            .collect();
        if matched.is_empty() {
            ids.clone()
        } else {
            matched
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileCx, SourceFile};
    use crate::parser;

    fn build(files: &[(&str, &str)]) -> SymTab {
        let parsed: Vec<(String, FileItems)> = files
            .iter()
            .map(|(path, src)| {
                let file = SourceFile::new(*path, *src);
                let cx = FileCx::new(&file);
                (path.to_string(), parser::parse(&cx))
            })
            .collect();
        SymTab::build(&parsed)
    }

    #[test]
    fn module_paths_follow_file_layout() {
        assert_eq!(module_path("crates/core/src/lib.rs"), vec!["pop_core"]);
        assert_eq!(
            module_path("crates/core/src/dataset.rs"),
            vec!["pop_core", "dataset"]
        );
        assert_eq!(
            module_path("crates/lint/src/rules/mod.rs"),
            vec!["pop_lint", "rules"]
        );
        assert_eq!(module_path("src/lib.rs"), vec!["painting_on_placement"]);
        assert_eq!(
            module_path("examples/generate_corpus.rs"),
            vec!["painting_on_placement", "examples", "generate_corpus"]
        );
    }

    #[test]
    fn methods_resolve_by_type_and_fall_back_to_trait_defaults() {
        let tab = build(&[(
            "crates/core/src/forecaster.rs",
            "pub trait Forecaster {\n  fn forecast(&self) -> Tensor;\n  fn forecast_image(&self) -> Image { decode(self.forecast()) }\n}\npub struct Shared;\nimpl Forecaster for Shared {\n  fn forecast(&self) -> Tensor { paint() }\n}",
        )]);
        let on_shared = tab.methods_on("Shared", "forecast");
        assert_eq!(on_shared.len(), 1);
        assert_eq!(tab.fns[on_shared[0]].display(), "Shared::forecast");
        // No inherent `forecast_image` on Shared → the trait default.
        let default = tab.methods_on("Shared", "forecast_image");
        assert_eq!(default.len(), 1);
        assert_eq!(
            tab.fns[default[0]].display(),
            "<Forecaster>::forecast_image"
        );
        // Trait-qualified lookup sees the impl.
        assert_eq!(tab.trait_impls("Forecaster", "forecast").len(), 1);
    }

    #[test]
    fn free_fns_prefer_same_file_then_same_crate() {
        let tab = build(&[
            (
                "crates/a/src/lib.rs",
                "pub fn helper() {}\nfn caller() { helper(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let from_a = tab.free_fns("helper", "crates/a/src/lib.rs");
        assert_eq!(from_a.len(), 1);
        assert_eq!(tab.fns[from_a[0]].file, "crates/a/src/lib.rs");
        let from_c = tab.free_fns("helper", "crates/c/src/lib.rs");
        assert_eq!(from_c.len(), 2, "no preference match → all candidates");
    }

    #[test]
    fn qualified_free_fns_filter_by_module_suffix() {
        let tab = build(&[
            ("crates/core/src/model_io.rs", "pub fn load_checkpoint() {}"),
            ("crates/eval/src/io.rs", "pub fn load_checkpoint() {}"),
        ]);
        let q = vec!["pop_core".to_string(), "model_io".to_string()];
        let ids = tab.free_fns_in("load_checkpoint", &q);
        assert_eq!(ids.len(), 1);
        assert_eq!(tab.fns[ids[0]].file, "crates/core/src/model_io.rs");
    }

    #[test]
    fn test_fns_are_not_symbols() {
        let tab = build(&[(
            "crates/a/src/lib.rs",
            "#[test]\nfn unit() {}\npub fn live() {}",
        )]);
        assert_eq!(tab.fns.len(), 1);
        assert_eq!(tab.fns[0].item.name, "live");
    }
}
