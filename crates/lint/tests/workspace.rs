//! The lint's own acceptance gates: the workspace must lint clean, and a
//! deliberately injected nondeterminism leak in `core::dataset::fingerprint`
//! must fail the lint (proving the CI gate is live, not vacuous).

use pop_lint::context::SourceFile;
use pop_lint::{lint_files, read_inventories, run_workspace, LintConfig};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_self_run_is_clean() {
    let report = run_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 100, "the walker saw the workspace");
    assert!(
        !report.unsafe_sites.is_empty() && !report.obs_names.is_empty(),
        "inventories are populated"
    );
    // The summary line is the exact string CI greps for.
    assert!(report.summary().starts_with("pop-lint: 0 findings"));
}

#[test]
fn injected_wall_clock_in_fingerprint_fails_the_lint() {
    let root = workspace_root();
    let rel = "crates/core/src/dataset.rs";
    let original = std::fs::read_to_string(root.join(rel)).expect("dataset.rs readable");

    // Inject an `Instant::now()` into the body of `fn fingerprint` — the
    // exact leak the determinism rule exists to catch.
    let needle = "pub fn fingerprint(";
    let at = original.find(needle).expect("fingerprint fn present");
    let brace = original[at..].find('{').expect("fingerprint has a body") + at + 1;
    let mut poisoned = original.clone();
    poisoned.insert_str(brace, "\n    let _leak = std::time::Instant::now();\n");

    let report = lint_files(
        &[SourceFile::new(rel, poisoned)],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    let wall_clock: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "wall_clock" && f.context == "fingerprint")
        .collect();
    assert!(
        !wall_clock.is_empty(),
        "an Instant::now() inside fingerprint() must fire wall_clock; got:\n{}",
        report.render()
    );
    // And the unpoisoned file must not fire it — the test isn't tautological.
    let clean = lint_files(
        &[SourceFile::new(rel, original)],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    assert!(
        !clean
            .findings
            .iter()
            .any(|f| f.rule == "wall_clock" && f.context == "fingerprint"),
        "baseline fingerprint() must be clean"
    );
}

#[test]
fn injected_two_hop_system_time_helper_fails_the_lint() {
    // The acceptance shape for the transitive determinism rule: the leak
    // is NOT in `fingerprint` itself but in a helper it calls — the old
    // file-scoped rule would still have caught this (same file), the real
    // point is the chain in the finding.
    let root = workspace_root();
    let rel = "crates/core/src/dataset.rs";
    let original = std::fs::read_to_string(root.join(rel)).expect("dataset.rs readable");

    let needle = "pub fn fingerprint(";
    let at = original.find(needle).expect("fingerprint fn present");
    let brace = original[at..].find('{').expect("fingerprint has a body") + at + 1;
    let mut poisoned = original.clone();
    poisoned.insert_str(brace, "\n    let _salt = stamp_helper();\n");
    poisoned.push_str(
        "\nfn stamp_helper() -> u64 {\n    let _t = std::time::SystemTime::now();\n    0\n}\n",
    );

    let report = lint_files(
        &[SourceFile::new(rel, poisoned)],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "wall_clock" && f.context == "stamp_helper")
        .unwrap_or_else(|| {
            panic!(
                "SystemTime::now() in a helper of fingerprint() must fire; got:\n{}",
                report.render()
            )
        });
    assert_eq!(
        hit.chain,
        vec!["fingerprint", "stamp_helper"],
        "the finding names the call chain"
    );
}

#[test]
fn injected_two_hop_unwrap_under_a_serve_handler_fails_the_lint() {
    // The acceptance shape for the transitive panic rule: the `.unwrap()`
    // lives in core — invisible to the old file-scoped rule — but a serve
    // handler newly calls into it.
    let root = workspace_root();
    let engine_rel = "crates/serve/src/engine.rs";
    let features_rel = "crates/core/src/features.rs";
    let engine = std::fs::read_to_string(root.join(engine_rel)).expect("engine.rs readable");
    let features = std::fs::read_to_string(root.join(features_rel)).expect("features.rs readable");

    let needle = "pub fn submit(";
    let at = engine.find(needle).expect("submit handler present");
    let brace = engine[at..].find('{').expect("submit has a body") + at + 1;
    let mut engine_poisoned = engine.clone();
    engine_poisoned.insert_str(brace, "\n        freshly_risky();\n");
    let mut features_poisoned = features.clone();
    features_poisoned.push_str(
        "\npub fn freshly_risky() {\n    let v: Option<u32> = None;\n    v.unwrap();\n}\n",
    );

    let report = lint_files(
        &[
            SourceFile::new(engine_rel, engine_poisoned),
            SourceFile::new(features_rel, features_poisoned),
        ],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "panic_path" && f.file == features_rel && f.context == "freshly_risky")
        .unwrap_or_else(|| {
            panic!(
                "an unwrap() newly called from a serve handler must fire; got:\n{}",
                report.render()
            )
        });
    assert!(
        hit.chain.len() >= 2 && hit.chain.last().map(String::as_str) == Some("freshly_risky"),
        "the finding names the call chain ending at the helper: {:?}",
        hit.chain
    );
    // The unpoisoned pair stays free of that finding — not tautological.
    let clean = lint_files(
        &[
            SourceFile::new(engine_rel, engine),
            SourceFile::new(features_rel, features),
        ],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    assert!(
        !clean.findings.iter().any(|f| f.context == "freshly_risky"),
        "baseline must not contain the injected helper"
    );
}

#[test]
fn report_json_round_trips_on_the_real_workspace() {
    let report = run_workspace(&workspace_root()).expect("scan succeeds");
    let json = report.to_validated_json().expect("self-validating JSON");
    assert!(json.contains("\"files_scanned\""));
}
