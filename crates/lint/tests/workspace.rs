//! The lint's own acceptance gates: the workspace must lint clean, and a
//! deliberately injected nondeterminism leak in `core::dataset::fingerprint`
//! must fail the lint (proving the CI gate is live, not vacuous).

use pop_lint::context::SourceFile;
use pop_lint::{lint_files, read_inventories, run_workspace, LintConfig};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_self_run_is_clean() {
    let report = run_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 100, "the walker saw the workspace");
    assert!(
        !report.unsafe_sites.is_empty() && !report.obs_names.is_empty(),
        "inventories are populated"
    );
    // The summary line is the exact string CI greps for.
    assert!(report.summary().starts_with("pop-lint: 0 findings"));
}

#[test]
fn injected_wall_clock_in_fingerprint_fails_the_lint() {
    let root = workspace_root();
    let rel = "crates/core/src/dataset.rs";
    let original = std::fs::read_to_string(root.join(rel)).expect("dataset.rs readable");

    // Inject an `Instant::now()` into the body of `fn fingerprint` — the
    // exact leak the determinism rule exists to catch.
    let needle = "pub fn fingerprint(";
    let at = original.find(needle).expect("fingerprint fn present");
    let brace = original[at..].find('{').expect("fingerprint has a body") + at + 1;
    let mut poisoned = original.clone();
    poisoned.insert_str(brace, "\n    let _leak = std::time::Instant::now();\n");

    let report = lint_files(
        &[SourceFile::new(rel, poisoned)],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    let wall_clock: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "wall_clock" && f.context == "fingerprint")
        .collect();
    assert!(
        !wall_clock.is_empty(),
        "an Instant::now() inside fingerprint() must fire wall_clock; got:\n{}",
        report.render()
    );
    // And the unpoisoned file must not fire it — the test isn't tautological.
    let clean = lint_files(
        &[SourceFile::new(rel, original)],
        &LintConfig::workspace(),
        &read_inventories(&root),
    );
    assert!(
        !clean
            .findings
            .iter()
            .any(|f| f.rule == "wall_clock" && f.context == "fingerprint"),
        "baseline fingerprint() must be clean"
    );
}

#[test]
fn report_json_round_trips_on_the_real_workspace() {
    let report = run_workspace(&workspace_root()).expect("scan succeeds");
    let json = report.to_validated_json().expect("self-validating JSON");
    assert!(json.contains("\"files_scanned\""));
}
