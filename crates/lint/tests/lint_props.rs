//! Property tests for the lint front end: the lexer is a total function
//! over arbitrary byte soup, and the parser recovers well-formed item
//! streams — every fn, at its right line, with its call sites attributed
//! to the right enclosing fn in the call graph.

use pop_lint::context::{FileCx, SourceFile};
use pop_lint::graph::{CallGraph, Verdict};
use pop_lint::lexer::{lex, Kind};
use pop_lint::parser;
use pop_lint::symtab::SymTab;
use pop_lint::LintConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer tolerates anything: lossily-decoded byte soup lexes
    /// without panicking, token spans stay inside the source and never
    /// run backwards, and line numbers are monotone.
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in collection::vec(0u8..=255, 64)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        let mut last_line = 1u32;
        for t in &toks {
            prop_assert!(t.start < t.end, "empty token span at {}", t.start);
            prop_assert!(t.end <= src.len(), "token runs past the source");
            prop_assert!(t.line >= last_line, "line numbers went backwards");
            last_line = t.line;
            let _ = t.text(&src); // spans must fall on char boundaries
        }
    }

    /// Hostile-but-structured fragments (the shapes that trip hand-rolled
    /// lexers: unterminated strings, nested comment openers, stray
    /// quotes) also lex totally, and the whole FileCx front end — test
    /// marking, fn mapping, allow collection — survives them.
    #[test]
    fn front_end_never_panics_on_fragment_soup(picks in collection::vec(0usize..12, 12)) {
        const FRAGMENTS: [&str; 12] = [
            "fn f(", "\"unterminated", "/* nested /* comment", "r#\"raw",
            "'a", "b'\\", "// lint: allow(", "#[cfg(test)]",
            "impl X {", "1.2.3e", "}}}", "let x = y[",
        ];
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join("\n");
        let file = SourceFile::new("crates/x/src/soup.rs", src);
        let cx = FileCx::new(&file);
        let _ = parser::parse(&cx); // must not panic either
    }

    /// Round trip: a generated stream of `n` fns — each padded with a
    /// random number of comment lines and calling its successor — parses
    /// back with every fn present at its exact line, and the call graph
    /// attributes each call site to the right caller with a precise edge
    /// to the right callee.
    #[test]
    fn parser_round_trips_fn_spans_and_call_attribution(
        pads in collection::vec(0u32..3, 5),
        salt in 0u32..1_000_000,
    ) {
        let n = pads.len();
        let name = |i: usize| format!("gen{salt}_{i}");
        let mut src = String::new();
        let mut expected_lines = Vec::new();
        let mut line = 1u32;
        for (i, &pad) in pads.iter().enumerate() {
            for p in 0..pad {
                src.push_str(&format!("// padding {p}\n"));
                line += 1;
            }
            expected_lines.push(line);
            if i + 1 < n {
                src.push_str(&format!(
                    "fn {}(x: u32) -> u32 {{ {}(x) }}\n",
                    name(i),
                    name(i + 1)
                ));
            } else {
                src.push_str(&format!("fn {}(x: u32) -> u32 {{ x }}\n", name(i)));
            }
            line += 1;
        }

        let file = SourceFile::new("crates/x/src/gen.rs", src);
        let cx = FileCx::new(&file);
        let parsed = vec![(cx.file.rel_path.clone(), parser::parse(&cx))];
        prop_assert_eq!(parsed[0].1.fns.len(), n, "every fn recovered");
        for (i, f) in parsed[0].1.fns.iter().enumerate() {
            prop_assert_eq!(&f.name, &name(i));
            prop_assert_eq!(f.line, expected_lines[i], "fn {} line", f.name);
            prop_assert!(f.body.is_some(), "fn {} body span", f.name);
        }

        let tab = SymTab::build(&parsed);
        let cxs = vec![FileCx::new(&file)];
        let g = CallGraph::build(&cxs, &parsed, tab, &LintConfig::workspace());
        for (i, &caller_line) in expected_lines.iter().enumerate().take(n - 1) {
            let callee = name(i + 1);
            let call = g.nodes[i]
                .calls
                .iter()
                .find(|c| c.name == callee)
                .expect("call site attributed to its caller");
            prop_assert_eq!(call.verdict, Verdict::Precise);
            prop_assert_eq!(call.targets.as_slice(), &[i + 1], "edge lands on the callee");
            prop_assert_eq!(call.line, caller_line, "call line is the caller's line");
        }
        // The last fn calls nothing: no manufactured edges.
        prop_assert!(g.nodes[n - 1].calls.is_empty(), "phantom calls on the leaf fn");
    }
}

/// Non-random anchor for the lexer property: a token that *should* exist.
#[test]
fn lexer_sees_through_the_soup_anchor() {
    let toks = lex("fn f() {} // tail");
    assert!(toks.iter().any(|t| t.kind == Kind::Ident));
    assert!(toks.iter().any(|t| t.kind == Kind::LineComment));
}
