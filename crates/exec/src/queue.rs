//! The bounded MPMC queue shared by the serving engine and the
//! data-generation pipeline.
//!
//! Producers use [`BoundedQueue::try_push`] (bounces with
//! [`PushError::Full`] — backpressure) or [`BoundedQueue::push`] (blocks
//! for space). Consumers use the blocking [`BoundedQueue::pop`] for plain
//! work distribution, or [`BoundedQueue::pop_batch_by`] to coalesce up to
//! `max_batch` key-compatible pending items into one batch, waiting up to
//! `max_wait` past the first item for stragglers — the serving engine's
//! micro-batcher.

use pop_obs::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why an enqueue was refused. The rejected item is handed back so the
/// caller can retry, reroute or drop it explicitly.
pub enum PushError<T> {
    /// The queue is at capacity (only [`BoundedQueue::try_push`] returns
    /// this — the backpressure signal).
    Full(T),
    /// The queue was [`close`](BoundedQueue::close)d and accepts no new
    /// items.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }

    /// True for the capacity-pressure variant.
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

impl<T> fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => write!(f, "PushError::Full(..)"),
            PushError::Closed(_) => write!(f, "PushError::Closed(..)"),
        }
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => write!(f, "queue is full"),
            PushError::Closed(_) => write!(f, "queue is closed"),
        }
    }
}

#[derive(Debug)]
struct QueueState<T> {
    deque: VecDeque<T>,
    closed: bool,
}

/// Telemetry handles for a [`BoundedQueue::named`] queue, registered in
/// the global [`pop_obs`] registry under `exec.queue.<name>.*`: the
/// current `depth` gauge, counters of pushes/pops that had to block, and
/// a histogram of how long consumers sat idle in a blocking pop.
#[derive(Debug)]
struct QueueMetrics {
    depth: Arc<Gauge>,
    push_waits: Arc<Counter>,
    pop_waits: Arc<Counter>,
    pop_wait_us: Arc<Histogram>,
}

impl QueueMetrics {
    fn register(name: &str) -> QueueMetrics {
        let registry = pop_obs::global();
        QueueMetrics {
            depth: registry.gauge(&format!("exec.queue.{name}.depth")),
            push_waits: registry.counter(&format!("exec.queue.{name}.push_waits")),
            pop_waits: registry.counter(&format!("exec.queue.{name}.pop_waits")),
            pop_wait_us: registry.histogram(&format!("exec.queue.{name}.pop_wait_us")),
        }
    }
}

/// Bounded multi-producer / multi-consumer queue with graceful shutdown
/// and an optional batch-coalescing pop.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    metrics: Option<QueueMetrics>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                deque: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            metrics: None,
        }
    }

    /// Like [`BoundedQueue::new`], but wired into the global observability
    /// registry: publishes an `exec.queue.<name>.depth` gauge, counters of
    /// blocked pushes/pops, and a `pop_wait_us` idle-time histogram.
    pub fn named(capacity: usize, name: &str) -> Self {
        let mut q = BoundedQueue::new(capacity);
        q.metrics = Some(QueueMetrics::register(name));
        q
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // A panic while holding the lock poisons it; the queue state is a
        // plain deque + flags (valid after any panic point), so recover
        // rather than cascading the panic into every producer/consumer.
        // lint: allow(blocking) — the queue mutex IS the rendezvous; every
        // critical section is a few deque ops, never a forward pass.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    fn note_depth(&self, depth: usize) {
        if let Some(m) = &self.metrics {
            m.depth.set(depth as f64);
        }
    }

    /// Non-blocking enqueue: the backpressure path.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item rides back in the error.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.deque.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.deque.push_back(item);
        self.note_depth(st.deque.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for queue space (or shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] when the queue shuts down before (or
    /// while) waiting for space.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        // lint: allow(blocking) — bounded-queue backpressure: producers
        // park here by design until a consumer frees a slot.
        let mut st = self.lock();
        let mut waited = false;
        while !st.closed && st.deque.len() >= self.capacity {
            waited = true;
            // lint: allow(blocking) — the backpressure wait itself.
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if waited {
            if let Some(m) = &self.metrics {
                m.push_waits.inc();
            }
        }
        if st.closed {
            return Err(PushError::Closed(item));
        }
        st.deque.push_back(item);
        self.note_depth(st.deque.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue of one item; `None` once the queue is closed *and*
    /// drained — the worker shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        let mut wait_start: Option<Instant> = None;
        loop {
            if let Some(item) = st.deque.pop_front() {
                self.note_depth(st.deque.len());
                drop(st);
                if let (Some(m), Some(start)) = (&self.metrics, wait_start) {
                    m.pop_waits.inc();
                    m.pop_wait_us.record_duration(start.elapsed());
                }
                self.not_full.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            if self.metrics.is_some() {
                wait_start.get_or_insert_with(Instant::now);
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the next batch: the oldest item plus up to `max_batch - 1`
    /// further pending items whose `key` equals the first item's, waiting
    /// at most `max_wait` past the first pop for more to arrive. Items with
    /// other keys stay queued in order for a later batch.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop_batch_by<K, F>(&self, max_batch: usize, max_wait: Duration, key: F) -> Option<Vec<T>>
    where
        K: PartialEq,
        F: Fn(&T) -> K,
    {
        let max_batch = max_batch.max(1);
        // lint: allow(blocking) — the consumer rendezvous: workers park
        // here between batches; this is the loop's sanctioned wait point.
        let mut st = self.lock();
        let mut wait_start: Option<Instant> = None;
        loop {
            if let Some(first) = st.deque.pop_front() {
                if let (Some(m), Some(start)) = (&self.metrics, wait_start) {
                    m.pop_waits.inc();
                    m.pop_wait_us.record_duration(start.elapsed());
                }
                fn take_matching<T, K: PartialEq>(
                    batch: &mut Vec<T>,
                    st: &mut QueueState<T>,
                    key: &K,
                    key_of: &impl Fn(&T) -> K,
                    max_batch: usize,
                ) {
                    let mut i = 0;
                    while batch.len() < max_batch && i < st.deque.len() {
                        let matches = st.deque.get(i).is_some_and(|it| key_of(it) == *key);
                        if matches {
                            // `remove` preserves FIFO order of the rest.
                            match st.deque.remove(i) {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
                let batch_key = key(&first);
                let mut batch = vec![first];
                take_matching(&mut batch, &mut st, &batch_key, &key, max_batch);
                // Hold the pop open briefly for stragglers: bounded extra
                // latency for the first item, much higher occupancy under
                // concurrent load.
                if batch.len() < max_batch && !max_wait.is_zero() && !st.closed {
                    let deadline = Instant::now() + max_wait;
                    while batch.len() < max_batch && !st.closed {
                        let now = Instant::now();
                        let Some(left) = deadline.checked_duration_since(now) else {
                            break;
                        };
                        if left.is_zero() {
                            break;
                        }
                        let (next, timeout) = self
                            .not_empty
                            // lint: allow(blocking) — batch-window wait,
                            // bounded by the caller's deadline.
                            .wait_timeout(st, left)
                            .unwrap_or_else(|e| e.into_inner());
                        st = next;
                        take_matching(&mut batch, &mut st, &batch_key, &key, max_batch);
                        // A wakeup may have been for a key this batch
                        // cannot take: pass the baton so an idle consumer
                        // serves it instead of waiting out our deadline.
                        if !st.deque.is_empty() {
                            self.not_empty.notify_one();
                        }
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
                // Mismatched-key items may remain; their producers'
                // notifications were consumed above, so re-notify before
                // returning the batch.
                let leftover = !st.deque.is_empty();
                self.note_depth(st.deque.len());
                drop(st);
                if leftover {
                    self.not_empty.notify_one();
                }
                // Freed capacity: wake blocked producers.
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            if self.metrics.is_some() {
                wait_start.get_or_insert_with(Instant::now);
            }
            // lint: allow(blocking) — idle consumers park until work (or
            // shutdown) arrives; waking them is the producers' job.
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting new items and wakes every waiter; queued items
    /// remain poppable so consumers drain gracefully.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        // lint: allow(blocking) — depth probe; same few-op critical
        // section as every other queue-mutex acquisition.
        self.lock().deque.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_bounces_when_saturated_and_frees_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_drains_in_fifo_order_then_signals_shutdown() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        q.close();
        assert!(matches!(q.try_push(9), Err(PushError::Closed(9))));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn push_returns_closed_while_waiting() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(pusher.join().unwrap(), Err(PushError::Closed(2))));
    }

    #[test]
    fn pop_batch_by_coalesces_matching_keys() {
        let q = BoundedQueue::new(8);
        for item in [4usize, 4, 8, 4, 8] {
            q.try_push(item).unwrap();
        }
        // First batch: the three 4s, coalesced around the front.
        let batch = q.pop_batch_by(4, Duration::ZERO, |&v| v).unwrap();
        assert_eq!(batch, vec![4, 4, 4]);
        // The 8s are still queued, in order.
        let batch = q.pop_batch_by(4, Duration::ZERO, |&v| v).unwrap();
        assert_eq!(batch, vec![8, 8]);
        q.close();
        assert!(q.pop_batch_by(4, Duration::ZERO, |&v| v).is_none());
    }

    #[test]
    fn pop_batch_by_respects_max_batch() {
        let q = BoundedQueue::new(8);
        for _ in 0..5 {
            q.try_push(7u8).unwrap();
        }
        assert_eq!(q.pop_batch_by(4, Duration::ZERO, |&v| v).unwrap().len(), 4);
        assert_eq!(q.pop_batch_by(4, Duration::ZERO, |&v| v).unwrap().len(), 1);
    }

    #[test]
    fn pop_batch_by_waits_for_stragglers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.try_push(1).unwrap();
            })
        };
        // Generous window: the straggler lands well inside it.
        let batch = q
            .pop_batch_by(2, Duration::from_millis(2000), |&v| v)
            .unwrap();
        assert_eq!(batch.len(), 2);
        producer.join().unwrap();
    }

    #[test]
    fn named_queue_publishes_depth_and_wait_metrics() {
        let q = Arc::new(BoundedQueue::named(1, "unit-metrics"));
        q.push(1u32).unwrap();
        let snap = pop_obs::global().snapshot();
        assert_eq!(snap.gauge("exec.queue.unit-metrics.depth"), Some(1.0));

        // A blocked push and a blocked pop both count as waits.
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        assert_eq!(q.pop(), Some(2));
        std::thread::sleep(Duration::from_millis(20));
        q.push(3).unwrap();
        assert_eq!(popper.join().unwrap(), Some(3));

        let snap = pop_obs::global().snapshot();
        assert_eq!(snap.gauge("exec.queue.unit-metrics.depth"), Some(0.0));
        assert!(snap.counter("exec.queue.unit-metrics.push_waits").unwrap() >= 1);
        assert!(snap.counter("exec.queue.unit-metrics.pop_waits").unwrap() >= 1);
        let waits = snap
            .histogram("exec.queue.unit-metrics.pop_wait_us")
            .unwrap();
        assert!(waits.count >= 1);
        assert!(
            waits.max >= 10_000,
            "popper idled >= 10ms, saw {}",
            waits.max
        );
    }

    #[test]
    fn concurrent_producers_and_consumers_move_every_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u64> = (0..3)
            .flat_map(|p| (0..20).map(move |i| p * 100 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
