//! `pop-exec` — the workspace's shared concurrency substrate.
//!
//! Two production subsystems move work between threads: the forecast
//! serving engine (`pop-serve`) and the dataset-generation pipeline
//! (`pop-pipeline`). Both are built from the same two primitives, extracted
//! here so there is exactly one queue/pool implementation to reason about:
//!
//! * [`BoundedQueue`] — a bounded multi-producer / multi-consumer queue
//!   with blocking and non-blocking enqueue (backpressure), a blocking
//!   [`pop`](BoundedQueue::pop), and the batch-coalescing
//!   [`pop_batch_by`](BoundedQueue::pop_batch_by) the serving engine's
//!   micro-batcher is made of. [`close`](BoundedQueue::close) stops intake
//!   while letting consumers drain — the graceful-shutdown protocol.
//! * [`WorkerPool`] — a handful of named `std::thread` workers joined on
//!   drop, so a stage cannot leak threads past its owner.
//!
//! The idiom shared by both users: producers `push` (or `try_push` and
//! treat [`PushError::Full`] as backpressure), each worker loops on a
//! blocking pop until the queue is closed *and* drained, and the owner
//! closes the queue then joins the pool.
//!
//! A third user, the region-parallel annealer in `pop-place`, needs the
//! same named-worker idiom but over *borrowed* state (architecture,
//! netlist, placement snapshots on the caller's stack); [`run_scoped`]
//! provides it via `std::thread::scope`, and [`ParkingPool`] provides the
//! persistent park/unpark variant for fan-outs dispatched thousands of
//! times per run (spawn once, park between rounds). [`set_pool_mode`]
//! switches consumers between the two for apples-to-apples benchmarking.

mod parked;
mod pool;
mod queue;
mod scoped;

pub use parked::{pool_mode, set_pool_mode, ParkingPool, PoolMode};
pub use pool::WorkerPool;
pub use queue::{BoundedQueue, PushError};
pub use scoped::{run_scoped, scoped_map};
