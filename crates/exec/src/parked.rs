//! A persistent park/unpark worker pool for repeated scoped fan-outs.
//!
//! [`run_scoped`](crate::run_scoped) spawns and joins OS threads on every
//! call — the right shape for a once-per-phase fan-out, but the
//! region-parallel annealer in `pop-place` dispatches a round *thousands*
//! of times per placement (`SYNC_ROUNDS` × epochs), and on that cadence
//! per-round `thread::spawn`/`join` is pure overhead. [`ParkingPool`]
//! spawns its workers once; between rounds they park on a condvar and a
//! round dispatch is one mutex lock + `notify_all` instead of `K` spawns.
//!
//! The borrowed-state trick of `std::thread::scope` is preserved without
//! scoped threads: [`ParkingPool::run`] erases the job's lifetime into a
//! raw trait-object pointer, *blocks* until every worker has finished the
//! round, and only then returns — so the job (and everything it borrows)
//! provably outlives every use. A generation counter makes each round
//! exactly-once per worker: a worker executes generation `g` if and only
//! if its own counter lags, and the dispatcher cannot start `g + 1` until
//! all workers have retired `g`.
//!
//! Telemetry (via [`pop_obs`]): `exec.pool.<name>.park_us` — how long
//! workers sit parked between rounds (the respawn latency this pool
//! eliminates turns into visible park time), `exec.pool.<name>.rounds` —
//! dispatched rounds, and `exec.pool.<name>.panics` — jobs that panicked.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How the region-parallel annealer runs its per-round fan-out. The
/// default is the persistent pool; [`PoolMode::ScopedRespawn`] restores
/// per-round [`run_scoped`](crate::run_scoped) spawning so benches and CI
/// can compare the two executions (they must produce bitwise-identical
/// results — the pool changes scheduling, never bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Spawn once, park between rounds (the fast path).
    Persistent,
    /// Spawn and join scoped threads every round (the PR-4 behaviour).
    ScopedRespawn,
}

static POOL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide fan-out mode consumers of
/// [`pool_mode`] honour. Benches/CI flip this to measure the
/// persistent-pool gain against per-round respawning.
pub fn set_pool_mode(mode: PoolMode) {
    POOL_MODE.store(
        match mode {
            PoolMode::Persistent => 0,
            PoolMode::ScopedRespawn => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide fan-out mode (default
/// [`PoolMode::Persistent`]).
pub fn pool_mode() -> PoolMode {
    match POOL_MODE.load(Ordering::Relaxed) {
        0 => PoolMode::Persistent,
        _ => PoolMode::ScopedRespawn,
    }
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)`. Safe to send between
/// threads because the referent is `Sync` and [`ParkingPool::run`] blocks
/// until no worker can touch it again.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the referent is `Sync` (shared calls from any thread are fine)
// and the round protocol in `ParkingPool::run` keeps it alive: `run`
// blocks until every worker has retired the round, after which no worker
// ever dereferences the pointer again.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per dispatched round; workers execute a round iff their
    /// private counter lags this one.
    generation: u64,
    job: Option<JobPtr>,
    /// Workers that have not yet retired the current generation.
    remaining: usize,
    /// Panicking jobs observed in the current generation.
    round_panics: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between rounds.
    work_cv: Condvar,
    /// The dispatcher parks here until the round retires.
    done_cv: Condvar,
}

/// A named, persistent worker pool dispatching borrowed-state jobs in
/// synchronous rounds — the park/unpark replacement for calling
/// [`run_scoped`](crate::run_scoped) in a hot loop.
///
/// # Example
///
/// ```
/// use pop_exec::ParkingPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ParkingPool::new("example", 4);
/// let sum = AtomicUsize::new(0);
/// // `sum` lives on this stack frame; `run` blocks until the round is done.
/// let panicked = pool.run(&|worker| {
///     sum.fetch_add(worker + 1, Ordering::Relaxed);
/// });
/// assert_eq!(panicked, 0);
/// assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// ```
pub struct ParkingPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    rounds: std::sync::Arc<pop_obs::Counter>,
}

impl std::fmt::Debug for ParkingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkingPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ParkingPool {
    /// Spawns `workers` threads named `<name>-<index>`; they park
    /// immediately and wake per [`ParkingPool::run`] call.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or the OS refuses to spawn a thread.
    pub fn new(name: &str, workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                remaining: 0,
                round_panics: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let park_us = pop_obs::global().histogram(&format!("exec.pool.{name}.park_us"));
        let panics = pop_obs::global().counter(&format!("exec.pool.{name}.panics"));
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let park_us = Arc::clone(&park_us);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("{name}-{index}"))
                    .spawn(move || worker_loop(index, &shared, &park_us, &panics))
                    // lint: allow(panic_path) — construction-time, documented # Panics
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        ParkingPool {
            shared,
            handles,
            workers,
            rounds: pop_obs::global().counter(&format!("exec.pool.{name}.rounds")),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatches one round: every worker runs `job(worker_index)` exactly
    /// once, and the call blocks until all of them have finished. Returns
    /// how many workers' jobs panicked this round (panics are contained,
    /// the pool stays usable).
    ///
    /// `job` may borrow anything from the caller's stack — the blocking
    /// round protocol guarantees no worker touches it after `run` returns.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) -> usize {
        self.rounds.inc();
        // SAFETY: erases the borrow's lifetime. Sound because this function
        // blocks below until `remaining == 0`, i.e. until every worker has
        // finished calling the job and can never dereference it again.
        let job_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        let ptr = JobPtr(job_static as *const _);
        // Worker panics are contained by catch_unwind; a poisoned lock can
        // only mean a panic at a point where PoolState (plain counters) is
        // still coherent, so recover instead of killing the dispatcher.
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(state.remaining, 0, "previous round retired");
        state.generation += 1;
        state.job = Some(ptr);
        state.remaining = self.workers;
        state.round_panics = 0;
        self.shared.work_cv.notify_all();
        while state.remaining > 0 {
            state = self
                .shared
                .done_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.job = None;
        state.round_panics
    }
}

impl Drop for ParkingPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    index: usize,
    shared: &Shared,
    park_us: &pop_obs::Histogram,
    panics: &pop_obs::Counter,
) {
    let mut seen_generation = 0u64;
    loop {
        let parked_at = Instant::now();
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.shutdown {
                    return;
                }
                // `run` only bumps the generation with a job installed; if
                // that invariant ever breaks, park again rather than panic
                // (a dead worker would hang the dispatcher forever).
                if state.generation > seen_generation {
                    if let Some(job) = state.job {
                        seen_generation = state.generation;
                        break job;
                    }
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        park_us.record_duration(parked_at.elapsed());
        // SAFETY: the dispatcher blocks in `run` until this worker (and all
        // others) decrement `remaining` below, so the referent is alive.
        let job: &(dyn Fn(usize) + Sync) = unsafe { &*job.0 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index)));
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if result.is_err() {
            state.round_panics += 1;
            panics.inc();
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_every_round_exactly_once() {
        let pool = ParkingPool::new("parked-test", 3);
        let per_worker: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            let panicked = pool.run(&|w| {
                per_worker[w].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(panicked, 0);
        }
        for (w, count) in per_worker.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 50, "worker {w}");
        }
    }

    #[test]
    fn jobs_borrow_the_callers_stack() {
        let pool = ParkingPool::new("parked-borrow", 4);
        let inputs: Vec<usize> = (1..=100).collect();
        let cursor = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        pool.run(&|_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(v) = inputs.get(i) else { break };
            sum.fetch_add(*v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn panics_are_counted_and_the_pool_survives() {
        let pool = ParkingPool::new("parked-panic", 2);
        let panicked = pool.run(&|w| {
            if w == 0 {
                panic!("deliberate test panic");
            }
        });
        assert_eq!(panicked, 1);
        // The pool is still serviceable after a panicked round.
        let ran = AtomicUsize::new(0);
        let panicked = pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(panicked, 0);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn results_match_run_scoped_for_a_worklist() {
        // The pool and run_scoped are interchangeable executors for the
        // cursor-over-items idiom the annealer uses.
        let items: Vec<usize> = (0..37).collect();
        let execute = |persistent: bool| -> usize {
            let cursor = AtomicUsize::new(0);
            let acc = AtomicUsize::new(0);
            let job = |_w: usize| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(v) = items.get(i) else { break };
                acc.fetch_add(v * v, Ordering::Relaxed);
            };
            if persistent {
                let pool = ParkingPool::new("parked-vs-scoped", 3);
                assert_eq!(pool.run(&job), 0);
            } else {
                let scoped = crate::run_scoped("parked-vs-scoped", 3, |w| move || job(w));
                assert_eq!(scoped, 0);
            }
            acc.load(Ordering::Relaxed)
        };
        assert_eq!(execute(true), execute(false));
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ParkingPool::new("parked-drop", 4);
        pool.run(&|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn mode_switch_round_trips() {
        assert_eq!(pool_mode(), PoolMode::Persistent);
        set_pool_mode(PoolMode::ScopedRespawn);
        assert_eq!(pool_mode(), PoolMode::ScopedRespawn);
        set_pool_mode(PoolMode::Persistent);
        assert_eq!(pool_mode(), PoolMode::Persistent);
    }

    #[test]
    fn telemetry_records_rounds_and_park_time() {
        let pool = ParkingPool::new("parked-obs", 2);
        for _ in 0..5 {
            pool.run(&|_| {});
        }
        drop(pool);
        let snap = pop_obs::global().snapshot();
        assert!(snap.counter("exec.pool.parked-obs.rounds").unwrap_or(0) >= 5);
        let park = snap.histogram("exec.pool.parked-obs.park_us");
        assert!(park.is_some_and(|h| h.count > 0), "park_us must be fed");
    }
}
