//! A small named worker pool over `std::thread`, joined on drop.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A fixed set of named worker threads.
///
/// Each worker runs one closure to completion (the idiom: loop on a
/// blocking [`BoundedQueue`](crate::BoundedQueue) pop until the queue is
/// closed and drained). The pool joins every worker on [`WorkerPool::join`]
/// or on drop, so a stage cannot leak threads past its owner. Worker
/// panics are contained: join reports how many workers panicked instead of
/// unwinding into the owner.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `<name>-<index>`, each running the
    /// closure produced by `make(index)`.
    ///
    /// Each spawn increments the global `exec.pool.<name>.workers` counter
    /// and every worker records its lifetime (spawn to exit — busy plus any
    /// queue idle, which the queue's own `pop_wait_us` histogram breaks
    /// out) into the `exec.pool.<name>.worker_us` histogram.
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses to spawn a thread.
    pub fn spawn<F>(name: &str, workers: usize, mut make: impl FnMut(usize) -> F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        let registry = pop_obs::global();
        registry
            .counter(&format!("exec.pool.{name}.workers"))
            .add(workers as u64);
        let lifetime = registry.histogram(&format!("exec.pool.{name}.worker_us"));
        let handles = (0..workers)
            .map(|i| {
                let body = make(i);
                let lifetime = Arc::clone(&lifetime);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        let started = Instant::now();
                        body();
                        lifetime.record_duration(started.elapsed());
                    })
                    // lint: allow(panic_path) — startup-only: if the OS
                    // cannot spawn threads the pool cannot exist at all.
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of workers still owned by the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when the pool has been joined (or was spawned empty).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish; returns how many panicked.
    pub fn join(&mut self) -> usize {
        let mut panicked = 0;
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let _ = self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundedQueue;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn workers_drain_a_queue_to_completion() {
        let q = Arc::new(BoundedQueue::new(8));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::spawn("drain-test", 3, |_| {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            move || {
                while let Some(v) = q.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(pool.len(), 3);
        for v in 1..=100usize {
            q.push(v).unwrap();
        }
        q.close();
        assert_eq!(pool.join(), 0);
        assert!(pool.is_empty());
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn join_counts_panicked_workers() {
        let mut pool = WorkerPool::spawn("panic-test", 2, |i| {
            move || {
                if i == 0 {
                    // One worker fails; the pool must still join cleanly.
                    panic!("deliberate test panic");
                }
            }
        });
        assert_eq!(pool.join(), 1);
    }

    #[test]
    fn pool_records_spawn_count_and_worker_lifetimes() {
        let mut pool = WorkerPool::spawn("metrics-test", 2, |_| {
            move || std::thread::sleep(std::time::Duration::from_millis(5))
        });
        assert_eq!(pool.join(), 0);
        let snap = pop_obs::global().snapshot();
        assert_eq!(snap.counter("exec.pool.metrics-test.workers"), Some(2));
        let lifetimes = snap.histogram("exec.pool.metrics-test.worker_us").unwrap();
        assert_eq!(lifetimes.count, 2);
        assert!(lifetimes.max >= 5_000, "workers lived >= 5ms");
    }

    #[test]
    fn workers_are_named_after_the_pool() {
        let mut pool = WorkerPool::spawn("name-test", 1, |_| {
            move || {
                let name = std::thread::current().name().map(str::to_owned);
                assert_eq!(name.as_deref(), Some("name-test-0"));
            }
        });
        assert_eq!(pool.join(), 0);
    }
}
