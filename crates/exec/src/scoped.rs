//! Scoped sibling of [`WorkerPool`](crate::WorkerPool): named worker
//! threads that may borrow from the caller's stack.
//!
//! [`WorkerPool`](crate::WorkerPool) demands `'static` closures, which is
//! right for long-lived pipeline stages but wrong for compute phases that
//! fan out over borrowed state — the region-parallel annealer in
//! `pop-place` hands each worker references to the architecture, netlist
//! and a placement snapshot that all live on the caller's stack. This
//! module wraps `std::thread::scope` in the same named-worker,
//! panic-containing idiom.

/// Runs `workers` scoped threads named `<name>-<index>` to completion and
/// returns how many panicked. Each thread runs the closure produced by
/// `make(index)`; closures may borrow from the enclosing scope. The call
/// blocks until every worker has finished — a scoped phase cannot leak
/// threads past its caller.
///
/// # Panics
///
/// Panics when the OS refuses to spawn a thread.
pub fn run_scoped<'env, F>(name: &str, workers: usize, mut make: impl FnMut(usize) -> F) -> usize
where
    F: FnOnce() + Send + 'env,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let body = make(i);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn_scoped(scope, body)
                    .expect("failed to spawn scoped worker thread")
            })
            .collect();
        let mut panicked = 0;
        for h in handles {
            if h.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_stack_state_and_all_join() {
        let inputs: Vec<usize> = (1..=100).collect();
        let next = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        let panicked = run_scoped("scoped-test", 3, |_| {
            // Borrows `inputs`, `next` and `sum` from this stack frame —
            // exactly what WorkerPool's 'static bound forbids.
            let (inputs, next, sum) = (&inputs, &next, &sum);
            move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(v) = inputs.get(i) else { break };
                sum.fetch_add(*v, Ordering::SeqCst);
            }
        });
        assert_eq!(panicked, 0);
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn panicked_workers_are_counted_not_propagated() {
        let panicked = run_scoped("scoped-panic-test", 2, |i| {
            move || {
                if i == 1 {
                    panic!("deliberate test panic");
                }
            }
        });
        assert_eq!(panicked, 1);
    }

    #[test]
    fn workers_are_named() {
        let panicked = run_scoped("scoped-name-test", 1, |_| {
            || {
                let name = std::thread::current().name().map(str::to_owned);
                assert_eq!(name.as_deref(), Some("scoped-name-test-0"));
            }
        });
        assert_eq!(panicked, 0);
    }

    #[test]
    fn zero_workers_is_a_no_op() {
        assert_eq!(run_scoped("scoped-empty", 0, |_| || ()), 0);
    }
}
