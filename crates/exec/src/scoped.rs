//! Scoped sibling of [`WorkerPool`](crate::WorkerPool): named worker
//! threads that may borrow from the caller's stack.
//!
//! [`WorkerPool`](crate::WorkerPool) demands `'static` closures, which is
//! right for long-lived pipeline stages but wrong for compute phases that
//! fan out over borrowed state — the region-parallel annealer in
//! `pop-place` hands each worker references to the architecture, netlist
//! and a placement snapshot that all live on the caller's stack. This
//! module wraps `std::thread::scope` in the same named-worker,
//! panic-containing idiom.

/// Runs `workers` scoped threads named `<name>-<index>` to completion and
/// returns how many panicked. Each thread runs the closure produced by
/// `make(index)`; closures may borrow from the enclosing scope. The call
/// blocks until every worker has finished — a scoped phase cannot leak
/// threads past its caller.
///
/// # Panics
///
/// Panics when the OS refuses to spawn a thread.
pub fn run_scoped<'env, F>(name: &str, workers: usize, mut make: impl FnMut(usize) -> F) -> usize
where
    F: FnOnce() + Send + 'env,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let body = make(i);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn_scoped(scope, body)
                    .expect("failed to spawn scoped worker thread")
            })
            .collect();
        let mut panicked = 0;
        for h in handles {
            if h.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    })
}

/// Maps `items` through `f` on `workers` scoped threads, returning the
/// results **in item order** regardless of scheduling — the deterministic
/// fan-out primitive for independent compute cells (the eval harness runs
/// its K×K evaluation matrix through this). Workers claim items from a
/// shared atomic cursor, so uneven per-item cost balances automatically;
/// `f` receives `(index, &item)` and may borrow from the caller's stack.
///
/// With `workers <= 1` (or a single item) the map runs inline on the
/// calling thread — same results, no spawn cost.
///
/// # Panics
///
/// Propagates a panic if any worker's `f` panicked (after all workers have
/// been joined, so no work is silently lost in flight).
pub fn scoped_map<T, R, F>(name: &str, workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = workers.min(items.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let panicked = run_scoped(name, workers, |_| {
        let (next, slots, f) = (&next, &slots, &f);
        move || loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            let result = f(i, item);
            *slots[i].lock().expect("scoped_map slot lock") = Some(result);
        }
    });
    assert_eq!(panicked, 0, "scoped_map: {panicked} worker(s) panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scoped_map slot lock")
                .expect("scoped_map: every item maps to exactly one result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_stack_state_and_all_join() {
        let inputs: Vec<usize> = (1..=100).collect();
        let next = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        let panicked = run_scoped("scoped-test", 3, |_| {
            // Borrows `inputs`, `next` and `sum` from this stack frame —
            // exactly what WorkerPool's 'static bound forbids.
            let (inputs, next, sum) = (&inputs, &next, &sum);
            move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(v) = inputs.get(i) else { break };
                sum.fetch_add(*v, Ordering::SeqCst);
            }
        });
        assert_eq!(panicked, 0);
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn panicked_workers_are_counted_not_propagated() {
        let panicked = run_scoped("scoped-panic-test", 2, |i| {
            move || {
                if i == 1 {
                    panic!("deliberate test panic");
                }
            }
        });
        assert_eq!(panicked, 1);
    }

    #[test]
    fn workers_are_named() {
        let panicked = run_scoped("scoped-name-test", 1, |_| {
            || {
                let name = std::thread::current().name().map(str::to_owned);
                assert_eq!(name.as_deref(), Some("scoped-name-test-0"));
            }
        });
        assert_eq!(panicked, 0);
    }

    #[test]
    fn zero_workers_is_a_no_op() {
        assert_eq!(run_scoped("scoped-empty", 0, |_| || ()), 0);
    }

    #[test]
    fn scoped_map_returns_results_in_item_order() {
        let items: Vec<usize> = (0..50).collect();
        // Uneven per-item cost: late items finish first on some workers.
        let map = |i: usize, v: &usize| {
            if i.is_multiple_of(7) {
                std::thread::yield_now();
            }
            v * v
        };
        let expected: Vec<usize> = items.iter().map(|v| v * v).collect();
        for workers in [1, 3, 8] {
            assert_eq!(
                scoped_map("map-test", workers, &items, map),
                expected,
                "workers = {workers}"
            );
        }
        // Empty input, and borrowing from the caller's stack.
        let empty: Vec<usize> = Vec::new();
        assert!(scoped_map("map-empty", 4, &empty, |_, v| *v).is_empty());
        let offset = 10usize;
        let shifted = scoped_map("map-borrow", 2, &items, |_, v| v + offset);
        assert_eq!(shifted[3], 13);
    }

    #[test]
    fn scoped_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map("map-panic", 2, &items, |_, v| {
                if *v == 5 {
                    panic!("deliberate test panic");
                }
                *v
            })
        });
        assert!(result.is_err(), "a panicking cell must not vanish silently");
    }
}
