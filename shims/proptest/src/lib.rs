//! Offline drop-in replacement for the subset of the `proptest` API used by
//! this workspace's property tests.
//!
//! The build environment has no access to crates.io, so `tests/properties.rs`
//! links against this shim: strategies are plain samplers over a seeded RNG,
//! the [`proptest!`] macro expands each property into a `#[test]` that runs
//! `ProptestConfig::cases` sampled cases, and the `prop_assert*` macros
//! defer to the standard assertion macros. There is **no shrinking** and no
//! failure persistence — a failing case reports the assertion message only.
//! The surface (`Strategy`, `prop_map`, tuple strategies, range strategies,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`) matches real
//! proptest closely enough that swapping the real crate back in is a
//! one-line `Cargo.toml` change.

use std::ops::Range;

#[doc(hidden)]
pub mod __rt {
    pub use rand::{Rng, RngCore, SeedableRng, StdRng};
}

use rand::{Rng, StdRng};

/// Per-property configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};

    /// A strategy producing `Vec`s of `len` samples of `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Builds a [`VecStrategy`] of exactly `len` elements (matching real
    /// proptest's `vec(strategy, n)` for a `usize` size).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Boolean property assertion (no shrinking; defers to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Expands property functions into `#[test]`s that run sampled cases.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// docs
///     #[test]
///     fn prop_name(x in 0usize..10, v in strategy_expr()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Seed differs per property so sibling tests draw distinct
            // streams, but is fixed across runs for reproducibility.
            let mut __seed = 0xA11CE_u64;
            for b in stringify!($name).bytes() {
                __seed = __seed.wrapping_mul(31).wrapping_add(b as u64);
            }
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = ($( $crate::Strategy::sample(&($strat), &mut __rng), )+);
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::StdRng::seed_from_u64(1);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn tuple_and_vec_strategies_compose() {
        let mut rng = crate::StdRng::seed_from_u64(2);
        let s = (0u64..5, 0.0f32..1.0);
        let (a, b) = s.sample(&mut rng);
        assert!(a < 5 && (0.0..1.0).contains(&b));
        let v = collection::vec(0.0f32..1.0, 7).sample(&mut rng);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires strategies into the test body.
        #[test]
        fn macro_expansion_works(x in 1usize..100, y in 0.0f64..1.0) {
            prop_assert!(x >= 1);
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as f64 + 2.0, y);
        }
    }
}
