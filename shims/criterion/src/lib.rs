//! Offline drop-in replacement for the subset of the `criterion` bench API
//! used by this workspace's `benches/`.
//!
//! The build environment has no access to crates.io, so benches link against
//! this minimal harness instead: it runs each benchmark body `sample_size`
//! times after one warm-up pass and prints min / mean / max wall-clock time
//! per iteration. There is no statistical analysis, outlier rejection or
//! HTML report — the numbers are honest but coarse. The public surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! `black_box`) matches criterion 0.5 closely enough that swapping the real
//! crate back in is a one-line `Cargo.toml` change.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark body.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        timed: false,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass (untimed).
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.timed = true;
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if per_iter.is_empty() {
        println!("{name:<40} (no iterations)");
        return;
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} min {} | mean {} | max {}  ({} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.3} s ")
    }
}

/// Timing handle passed to benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    timed: bool,
    elapsed: Duration,
    iters: u64,
}

/// Setup-cost hint, mirroring `criterion::BatchSize` (ignored by the shim's
/// timing model — setup simply runs untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small.
    SmallInput,
    /// Setup output is large.
    LargeInput,
    /// Setup output is one routine's worth of work.
    PerIteration,
}

impl Bencher {
    /// Times one execution of `f` (criterion's `iter`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed();
        std::hint::black_box(&out);
        if self.timed {
            self.elapsed += dt;
            self.iters += 1;
        }
    }

    /// Times `routine` on a fresh untimed `setup` product (criterion's
    /// `iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        let dt = start.elapsed();
        std::hint::black_box(&out);
        if self.timed {
            self.elapsed += dt;
            self.iters += 1;
        }
    }
}

/// Declares a bench entry point, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
