//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation: a seedable
//! xoshiro256++ generator behind the familiar [`Rng`] / [`SeedableRng`] /
//! [`rngs::StdRng`] names. Streams are deterministic in the seed (which is
//! all the reproduction relies on) but are **not** the same streams the real
//! `rand` crate produces, and none of this is cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Re-exports of the concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed, mirroring
/// `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The ergonomic sampling surface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of a primitive type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open) or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard the half-open contract against rounding up to `end`.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as Standard>::sample(rng);
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The workspace's standard generator: xoshiro256++ seeded through
/// SplitMix64 (Blackman & Vigna). Deterministic in the seed, `Clone`
/// preserves the stream position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's internal state — the four xoshiro256++ words.
    ///
    /// Together with [`StdRng::from_state`] this makes the stream position
    /// checkpointable: training runs persist their RNG mid-stream and
    /// resume bit-exactly. (The real `rand` crate has no such API; this is
    /// a deliberate extension of the offline shim.)
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at an exact stream position captured by
    /// [`StdRng::state`]. An all-zero state (never produced by seeding) is
    /// re-seeded from 0 — xoshiro's one degenerate fixed point.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended for seeding xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..37 {
            rng.next_u64(); // advance mid-stream
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The degenerate all-zero state is healed, not a stuck stream.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
