//! Integration: every stage of the pipeline is deterministic in its seeds
//! — the property that makes experiments reproducible bit-for-bit.

use painting_on_placement as pop;
use pop::arch::Arch;
use pop::core::{dataset, ExperimentConfig, Pix2Pix};
use pop::netlist::{generate, presets};
use pop::place::{place, PlaceOptions};
use pop::route::{route, RouteOptions};

#[test]
fn netlist_generation_is_deterministic() {
    let spec = presets::by_name("ode").unwrap().scaled(0.02);
    assert_eq!(generate(&spec), generate(&spec));
}

#[test]
fn placement_and_routing_are_deterministic() {
    let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
    let (c, i, m, x) = netlist.site_demand();
    let arch = Arch::auto_size(c, i, m, x, 16, 1.3).unwrap();
    let opts = PlaceOptions {
        seed: 123,
        ..Default::default()
    };
    let p1 = place(&arch, &netlist, &opts).unwrap();
    let p2 = place(&arch, &netlist, &opts).unwrap();
    assert_eq!(p1, p2);
    let r1 = route(&arch, &netlist, &p1, &RouteOptions::default()).unwrap();
    let r2 = route(&arch, &netlist, &p1, &RouteOptions::default()).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn model_training_is_deterministic() {
    let config = ExperimentConfig {
        pairs_per_design: 4,
        epochs: 2,
        ..ExperimentConfig::test()
    };
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();

    let mut m1 = Pix2Pix::new(&config, 77).unwrap();
    let h1 = m1.train(&ds.pairs, 2);
    let mut m2 = Pix2Pix::new(&config, 77).unwrap();
    let h2 = m2.train(&ds.pairs, 2);
    assert_eq!(h1, h2, "identical seeds give identical training");

    let f1 = m1.forecast(&ds.pairs[0].x);
    let f2 = m2.forecast(&ds.pairs[0].x);
    assert_eq!(f1, f2, "identical models forecast identically");

    // A different seed diverges.
    let mut m3 = Pix2Pix::new(&config, 78).unwrap();
    let h3 = m3.train(&ds.pairs, 2);
    assert_ne!(h1, h3);
}

#[test]
fn dataset_tensors_are_bit_identical_across_builds() {
    let config = ExperimentConfig {
        pairs_per_design: 3,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq1").unwrap();
    let a = dataset::build_design_dataset(&spec, &config).unwrap();
    let b = dataset::build_design_dataset(&spec, &config).unwrap();
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(pa.x.data(), pb.x.data());
        assert_eq!(pa.y.data(), pb.y.data());
    }
}
