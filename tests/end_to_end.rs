//! Integration: the full pipeline — netlist → placement → routing →
//! rasterisation → feature tensors → cGAN training → forecast → metrics —
//! at miniature scale.

use painting_on_placement as pop;
use pop::core::{dataset, metrics, ExperimentConfig, Pix2Pix};
use pop::netlist::presets;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        pairs_per_design: 6,
        epochs: 3,
        ..ExperimentConfig::test()
    }
}

#[test]
fn full_pipeline_produces_trainable_dataset() {
    let config = tiny_config();
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config)
        .expect("pipeline");
    assert_eq!(ds.pairs.len(), 6);
    // Inputs in [-1, 1] (+ the λ-scaled connectivity channel in [0, λ]).
    for p in &ds.pairs {
        assert!(p.x.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(p.y.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(p.meta.true_mean_congestion > 0.0);
        assert!(p.meta.true_max_congestion <= 1.5, "calibrated fabric");
    }
}

#[test]
fn training_improves_over_untrained_model() {
    let config = tiny_config();
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config)
        .expect("pipeline");
    let (train, test) = ds.pairs.split_at(4);

    let mut untrained = Pix2Pix::new(&config, 5).expect("model");
    let mut mae_untrained = 0.0f32;
    for p in test {
        let img = untrained.forecast_image(&p.x);
        let truth = pop::core::features::tensor_to_image(&p.y);
        mae_untrained += img.mean_abs_diff(&truth).unwrap();
    }

    let mut model = Pix2Pix::new(&config, 5).expect("model");
    let history = model.train(train, 8);
    let mut mae_trained = 0.0f32;
    for p in test {
        let img = model.forecast_image(&p.x);
        let truth = pop::core::features::tensor_to_image(&p.y);
        mae_trained += img.mean_abs_diff(&truth).unwrap();
    }
    assert!(
        mae_trained < mae_untrained,
        "training must reduce forecast error: {mae_untrained} -> {mae_trained}"
    );
    // Loss history is recorded per epoch.
    assert_eq!(history.l1.len(), 8);
    assert!(history.l1.last().unwrap() < history.l1.first().unwrap());
}

#[test]
fn leave_one_out_then_finetune_flows() {
    let config = tiny_config();
    let d1 = dataset::build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config)
        .expect("pipeline");
    let d2 = dataset::build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config)
        .expect("pipeline");
    let all = vec![d1, d2];
    let (train, test) = dataset::leave_one_out(&all, "diffeq1");

    let mut model = Pix2Pix::new(&config, 9).expect("model");
    let _ = model.train_refs(&train, config.epochs);
    let acc1 = metrics::evaluate_accuracy(&mut model, &test.pairs, config.tolerance).unwrap();
    let _ = model.finetune(&test.pairs[..2], 2);
    let acc2 = metrics::evaluate_accuracy(&mut model, &test.pairs[2..], config.tolerance).unwrap();
    // Both are valid probabilities; Top10 well-defined.
    assert!((0.0..=1.0).contains(&acc1));
    assert!((0.0..=1.0).contains(&acc2));
    let top10 = metrics::top10_accuracy(&mut model, test).unwrap();
    assert!((0.0..=1.0).contains(&top10));
}

#[test]
fn speedup_is_positive_and_large() {
    // Inference must beat routing. At the miniature test scale the routed
    // design is so small that routing takes single-digit milliseconds —
    // below one debug-mode forward pass — so this test alone routes a
    // somewhat larger SHA instance (still < a second) to compare the two
    // costs in the regime the paper's claim is about.
    let config = ExperimentConfig {
        design_scale: 0.05,
        pairs_per_design: 2,
        ..tiny_config()
    };
    let ds = dataset::build_design_dataset(&presets::by_name("SHA").unwrap(), &config)
        .expect("pipeline");
    let mean_route_micros: f64 = ds
        .pairs
        .iter()
        .map(|p| p.meta.route_micros as f64)
        .sum::<f64>()
        / ds.pairs.len() as f64;
    let mut model = Pix2Pix::new(&config, 3).expect("model");
    // Warm up once: the first forward pays one-off layer-cache allocation
    // that steady-state forecasting (the paper's 0.09 s/image claim) never
    // sees again, then time the steady state.
    let _ = model.forecast(&ds.pairs[0].x);
    let t = std::time::Instant::now();
    let _ = model.forecast(&ds.pairs[0].x);
    let infer_micros = t.elapsed().as_micros() as f64;
    assert!(
        mean_route_micros / infer_micros > 1.0,
        "routing {mean_route_micros}us should exceed inference {infer_micros}us"
    );
}
