//! Integration: the dataset disk cache loads back exactly what was built,
//! and invalidates on config changes.

use painting_on_placement as pop;
use pop::core::{dataset, ExperimentConfig};
use pop::netlist::presets;

#[test]
fn build_or_load_is_transparent() {
    let config = ExperimentConfig {
        pairs_per_design: 3,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq1").unwrap();
    let dir = std::env::temp_dir().join("pop_integration_cache");
    let _ = std::fs::remove_dir_all(&dir);

    let built = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    // Second call must hit the cache and round-trip identically.
    let loaded = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    assert_eq!(built, loaded);

    // Changing a data-affecting knob invalidates the cache entry.
    let other = ExperimentConfig {
        lambda_connect: 0.5,
        ..config.clone()
    };
    let rebuilt = dataset::build_or_load(&spec, &other, Some(&dir)).unwrap();
    assert_ne!(
        built.pairs[0].x.data(),
        rebuilt.pairs[0].x.data(),
        "λ change must alter the connectivity channel"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_meta_fields() {
    let config = ExperimentConfig {
        pairs_per_design: 2,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq2").unwrap();
    let dir = std::env::temp_dir().join("pop_integration_cache2");
    let _ = std::fs::remove_dir_all(&dir);
    let built = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    let loaded = dataset::load_dataset(&dir, &spec, &config)
        .unwrap()
        .expect("hit");
    for (a, b) in built.pairs.iter().zip(&loaded.pairs) {
        assert_eq!(a.meta.place_seed, b.meta.place_seed);
        assert_eq!(a.meta.true_mean_congestion, b.meta.true_mean_congestion);
        assert_eq!(a.meta.route_micros, b.meta.route_micros);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
