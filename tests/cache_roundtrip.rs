//! Integration: the dataset disk cache loads back exactly what was built,
//! invalidates on config changes, and **survives crashes**: a `.popds`
//! truncated at *any* byte (the relic of a killed writer under the
//! pre-atomic-rename format, or of disk-full corruption) must read as a
//! miss that the pipeline silently regenerates — never a hard error, never
//! a poisoned cache.

use painting_on_placement as pop;
use pop::core::{dataset, ExperimentConfig};
use pop::netlist::presets;

#[test]
fn build_or_load_is_transparent() {
    let config = ExperimentConfig {
        pairs_per_design: 3,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq1").unwrap();
    let dir = std::env::temp_dir().join("pop_integration_cache");
    let _ = std::fs::remove_dir_all(&dir);

    let built = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    // Second call must hit the cache and round-trip identically.
    let loaded = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    assert_eq!(built, loaded);

    // Changing a data-affecting knob invalidates the cache entry.
    let other = ExperimentConfig {
        lambda_connect: 0.5,
        ..config.clone()
    };
    let rebuilt = dataset::build_or_load(&spec, &other, Some(&dir)).unwrap();
    assert_ne!(
        built.pairs[0].x.data(),
        rebuilt.pairs[0].x.data(),
        "λ change must alter the connectivity channel"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_byte_is_a_miss_and_the_pipeline_regenerates() {
    // Small resolution keeps the file a few KB so sweeping every byte
    // stays fast even in debug builds.
    let config = ExperimentConfig {
        pairs_per_design: 2,
        resolution: 16,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq2").unwrap();
    let dir = std::env::temp_dir().join("pop_integration_cache_crash");
    let _ = std::fs::remove_dir_all(&dir);
    let built = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    let path = dir.join("diffeq2.popds");
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 64, "sanity: real payload");

    // Crash injection: cut the file at every byte boundary — which covers
    // every *field* boundary of the format (magic, fingerprint, counts,
    // per-pair meta, tensor headers, tensor payloads). Every single cut
    // must load as Ok(None): regenerate, don't error, don't over-allocate.
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match dataset::load_dataset(&dir, &spec, &config) {
            Ok(None) => {}
            Ok(Some(_)) => panic!("truncation at byte {cut} read back as a full dataset"),
            Err(e) => panic!("truncation at byte {cut} must be a miss, got error: {e}"),
        }
        // And the build_or_load path heals the entry transparently...
        if cut == bytes.len() / 2 {
            let rebuilt = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
            assert_eq!(rebuilt.pairs.len(), built.pairs.len());
            for (a, b) in rebuilt.pairs.iter().zip(&built.pairs) {
                assert_eq!(a.x, b.x);
                assert_eq!(a.y, b.y);
            }
            // ...after which the file is whole again; re-damage it for the
            // remaining cuts.
            assert!(dataset::load_dataset(&dir, &spec, &config)
                .unwrap()
                .is_some());
        }
    }
    // Bit-flip injection in the header: wrong magic and wrong fingerprint
    // are both plain misses.
    for flip_at in [0usize, 9] {
        let mut corrupt = bytes.clone();
        corrupt[flip_at] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(dataset::load_dataset(&dir, &spec, &config)
            .unwrap()
            .is_none());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_meta_fields() {
    let config = ExperimentConfig {
        pairs_per_design: 2,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq2").unwrap();
    let dir = std::env::temp_dir().join("pop_integration_cache2");
    let _ = std::fs::remove_dir_all(&dir);
    let built = dataset::build_or_load(&spec, &config, Some(&dir)).unwrap();
    let loaded = dataset::load_dataset(&dir, &spec, &config)
        .unwrap()
        .expect("hit");
    for (a, b) in built.pairs.iter().zip(&loaded.pairs) {
        assert_eq!(a.meta.place_seed, b.meta.place_seed);
        assert_eq!(a.meta.true_mean_congestion, b.meta.true_mean_congestion);
        assert_eq!(a.meta.route_micros, b.meta.route_micros);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
