//! Property-based tests over the public APIs: structural invariants that
//! must hold for arbitrary (bounded) inputs.

use painting_on_placement as pop;
use pop::arch::{Arch, SiteKind};
use pop::netlist::{generate, SyntheticSpec};
use pop::place::{place, PlaceAlgorithm, PlaceOptions};
use pop::raster::color::{utilization_color, utilization_from_color};
use pop::route::{route, verify_routes, RouteOptions};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        10usize..80, // luts
        0usize..30,  // ffs
        10usize..60, // nets
        2usize..6,   // inputs
        2usize..6,   // outputs
        0usize..2,   // memories
        0usize..3,   // multipliers
        0u64..1000,  // seed
        0.0f64..1.0, // locality
    )
        .prop_map(
            |(luts, ffs, nets, inputs, outputs, memories, multipliers, seed, locality)| {
                SyntheticSpec {
                    name: format!("prop_{seed}"),
                    luts,
                    ffs,
                    nets,
                    inputs,
                    outputs,
                    memories,
                    multipliers,
                    luts_per_clb: 10,
                    mean_fanout: 2.5,
                    locality,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generator always produces a structurally valid netlist whose
    /// counts match the spec.
    #[test]
    fn generated_netlists_match_spec(spec in arb_spec()) {
        let nl = generate(&spec);
        let stats = nl.stats();
        prop_assert_eq!(stats.nets, spec.nets);
        prop_assert_eq!(stats.luts, spec.luts);
        prop_assert_eq!(stats.ios, spec.inputs + spec.outputs);
        for net in nl.nets() {
            prop_assert!(!net.sinks.is_empty());
            // No repeated terminals.
            let mut terms: Vec<_> = net.terminals().collect();
            terms.sort();
            let before = terms.len();
            terms.dedup();
            prop_assert_eq!(terms.len(), before);
        }
    }

    /// Placement is always legal: every block on a kind-compatible site,
    /// no sharing.
    #[test]
    fn placements_are_always_legal(spec in arb_spec(), seed in 0u64..500) {
        let nl = generate(&spec);
        let (c, i, m, x) = nl.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        let opts = PlaceOptions {
            seed,
            inner_num: 0.05,
            algorithm: if seed % 2 == 0 {
                PlaceAlgorithm::BoundingBox
            } else {
                PlaceAlgorithm::PathTiming
            },
            ..Default::default()
        };
        let placement = place(&arch, &nl, &opts).unwrap();
        prop_assert!(placement.verify(&arch, &nl).is_ok());
    }

    /// Routed trees connect all terminals of every net, and a successful
    /// route never exceeds capacity.
    #[test]
    fn routes_connect_everything(spec in arb_spec()) {
        let nl = generate(&spec);
        let (c, i, m, x) = nl.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 48, 1.3).unwrap();
        let placement = place(&arch, &nl, &PlaceOptions {
            inner_num: 0.05,
            ..Default::default()
        }).unwrap();
        let result = route(&arch, &nl, &placement, &RouteOptions::default()).unwrap();
        prop_assert!(verify_routes(&arch, &nl, &placement, &result).is_ok());
        if result.success {
            prop_assert!(result.congestion().max_utilization() <= 1.0 + 1e-6);
        }
    }

    /// The utilisation colour bar decodes back to the encoded value.
    #[test]
    fn colorbar_roundtrip(u in 0.0f32..1.0) {
        let decoded = utilization_from_color(utilization_color(u));
        prop_assert!((decoded - u).abs() < 0.01);
    }

    /// Architecture capacities always match the enumerated sites, and the
    /// channel index is a bijection.
    #[test]
    fn arch_invariants(w in 4usize..20, h in 4usize..20, cw in 1usize..64) {
        let arch = Arch::builder().interior(w, h).channel_width(cw).build().unwrap();
        let clb = arch.sites().iter().filter(|s| s.kind == SiteKind::Clb).count();
        prop_assert_eq!(clb, arch.clb_capacity());
        let mut seen = vec![false; arch.channel_count()];
        for ch in arch.channels() {
            let idx = arch.channel_index(ch);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-pixel accuracy is symmetric, bounded, and 1.0 on identical
    /// images (checked through the public raster API on random images).
    #[test]
    fn accuracy_metric_properties(values in proptest::collection::vec(0.0f32..1.0, 48), tol in 0.01f32..0.5) {
        use pop::raster::{metrics::per_pixel_accuracy, Image};
        let a = Image::from_data(4, 4, 3, values.clone());
        let b = Image::from_data(4, 4, 3, values.iter().map(|v| 1.0 - v).collect());
        let ab = per_pixel_accuracy(&a, &b, tol).unwrap();
        let ba = per_pixel_accuracy(&b, &a, tol).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(per_pixel_accuracy(&a, &a, tol).unwrap(), 1.0);
    }

    /// NN building blocks: conv ∘ deconv restores spatial dims for the
    /// pix2pix geometry at any power-of-two size and channel count.
    #[test]
    fn conv_deconv_shape_inverse(pow in 3u32..7, cin in 1usize..5, cout in 1usize..5) {
        use pop::nn::{Conv2d, ConvTranspose2d, Layer, Tensor};
        let size = 1usize << pow;
        let mut conv = Conv2d::new(cin, cout, 4, 2, 1, 1);
        let mut deconv = ConvTranspose2d::new(cout, cin, 4, 2, 1, 2);
        let x = Tensor::randn([1, cin, size, size], 0.0, 1.0, 3);
        let y = conv.forward(&x, false);
        prop_assert_eq!(y.shape(), [1, cout, size / 2, size / 2]);
        let z = deconv.forward(&y, false);
        prop_assert_eq!(z.shape(), x.shape());
    }
}
