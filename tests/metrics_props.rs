//! Property tests for the metric invariants of `pop_core::metrics`: the
//! scalar metrics are total functions whose documented edge cases
//! (tie-heavy rankings, constant vectors, degenerate `k`) hold for
//! arbitrary bounded inputs — no `NaN` ever reaches an `EvalReport`.

use painting_on_placement as pop;
use pop::core::metrics::{nrms, pearson, spearman, top_k_overlap};
use proptest::prelude::*;

/// Tie-heavy score vectors: values quantised to a coarse 0.25 grid, so
/// duplicates (the historical failure mode of rank metrics) are common.
/// (The offline proptest shim's `collection::vec` takes a fixed length;
/// properties draw a separate `len` and slice.)
fn quantized_scores() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-8i32..8).prop_map(|q| q as f32 * 0.25), 24)
}

/// Unconstrained (but finite) score vectors for the pure range checks.
fn raw_scores() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0e3f32..1.0e3, 24)
}

/// One deterministic permutation applied to both vectors: rotation by `r`
/// then reversal — enough structure to catch any input-order dependence.
fn permute(v: &[f32], r: usize) -> Vec<f32> {
    let n = v.len();
    let mut out: Vec<f32> = v.iter().cycle().skip(r % n).take(n).cloned().collect();
    out.reverse();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `top_k_overlap` ∈ [0, 1]; identical inputs (ties and all) score
    /// exactly 1.0; permuting both vectors together never changes the
    /// value; `k = 0` and `k > len` have defined values.
    #[test]
    fn top_k_overlap_invariants(
        scores in quantized_scores(),
        other in quantized_scores(),
        len in 1usize..24,
        k in 0usize..30,
        rot in 0usize..24,
    ) {
        let n = len;
        let (a, b) = (&scores[..n], &other[..n]);
        let v = top_k_overlap(a, b, k);
        prop_assert!((0.0..=1.0).contains(&v), "out of range: {v}");
        // Identical inputs are a perfect retrieval, however tie-heavy.
        prop_assert_eq!(top_k_overlap(a, a, k), 1.0);
        let constant = vec![0.5f32; n];
        prop_assert_eq!(top_k_overlap(&constant, &constant, k), 1.0);
        // Permutation invariance: same reordering of both vectors.
        prop_assert_eq!(top_k_overlap(&permute(a, rot), &permute(b, rot), k), v);
        // Degenerate k: clamped (k > len) and vacuously perfect (k = 0).
        prop_assert_eq!(top_k_overlap(a, b, n + 100), top_k_overlap(a, b, n));
        prop_assert_eq!(top_k_overlap(a, b, 0), 1.0);
    }

    /// `pearson`/`spearman` ∈ [-1, 1], are invariant under positive
    /// affine maps (scale/shift) of either argument, treat constant
    /// vectors as defined 0.0, and never emit NaN.
    #[test]
    fn correlation_invariants(
        scores in quantized_scores(),
        other in quantized_scores(),
        len in 1usize..24,
        scale in 0.25f32..4.0,
        shift in -5.0f32..5.0,
        rot in 0usize..24,
    ) {
        let n = len;
        let (a, b) = (&scores[..n], &other[..n]);
        let p = pearson(a, b);
        let s = spearman(a, b);
        prop_assert!((-1.0..=1.0).contains(&p), "pearson {p}");
        prop_assert!((-1.0..=1.0).contains(&s), "spearman {s}");
        // Positive affine transform of one side: Pearson within float
        // drift, Spearman exact (ranks are untouched).
        let at: Vec<f32> = a.iter().map(|v| v * scale + shift).collect();
        prop_assert!((pearson(&at, b) - p).abs() < 1e-3);
        prop_assert_eq!(spearman(&at, b), s);
        // Permutation invariance (average ranks make ties order-free).
        prop_assert_eq!(spearman(&permute(a, rot), &permute(b, rot)), s);
        // Constant vectors: the defined 0.0, not a NaN from zero variance.
        let flat = vec![shift; n];
        prop_assert_eq!(pearson(&flat, b), 0.0);
        prop_assert_eq!(spearman(&flat, b), 0.0);
        prop_assert_eq!(pearson(a, &flat), 0.0);
    }

    /// Range checks also hold for unquantised magnitudes.
    #[test]
    fn correlation_and_overlap_bounds_on_raw_floats(
        scores in raw_scores(),
        other in raw_scores(),
        len in 2usize..24,
        k in 0usize..40,
    ) {
        let n = len;
        let (a, b) = (&scores[..n], &other[..n]);
        prop_assert!((-1.0..=1.0).contains(&pearson(a, b)));
        prop_assert!((-1.0..=1.0).contains(&spearman(a, b)));
        prop_assert!((0.0..=1.0).contains(&top_k_overlap(a, b, k)));
    }

    /// `nrms` ≥ 0, equals 0 exactly on matching inputs, stays finite and
    /// positive for a real perturbation — including on constant
    /// ("zero-range") truth vectors, where the divisor falls back to 1.
    #[test]
    fn nrms_invariants(scores in quantized_scores(), which in 0usize..24) {
        prop_assert_eq!(nrms(&scores, &scores), 0.0);
        let i = which % scores.len();
        let mut off = scores.clone();
        off[i] += 0.5;
        let v = nrms(&off, &scores);
        prop_assert!(v > 0.0 && v.is_finite(), "perturbed nrms {v}");
        // Constant truth: defined, not NaN.
        let flat = vec![1.25f32; scores.len()];
        prop_assert_eq!(nrms(&flat, &flat), 0.0);
        let mut off_flat = flat.clone();
        off_flat[i] -= 0.5;
        let w = nrms(&off_flat, &flat);
        prop_assert!(w > 0.0 && w.is_finite(), "constant-truth nrms {w}");
    }
}
