//! Integration: the §5.2/§5.3 ablation axes are wired through the whole
//! stack — toggling them changes models and outputs in the expected
//! directions.

use painting_on_placement as pop;
use pop::core::{dataset, ExperimentConfig, Pix2Pix, SkipMode};
use pop::netlist::presets;
use pop::nn::Layer;

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        pairs_per_design: 4,
        epochs: 2,
        ..ExperimentConfig::test()
    }
}

#[test]
fn skip_modes_change_the_model() {
    let config = base_config();
    let mk = |skip: SkipMode| {
        let cfg = ExperimentConfig {
            skip,
            ..config.clone()
        };
        Pix2Pix::new(&cfg, 3).unwrap()
    };
    let mut all = mk(SkipMode::All);
    let mut single = mk(SkipMode::Single);
    let mut none = mk(SkipMode::None);
    let pa = all.generator_mut().parameter_count();
    let ps = single.generator_mut().parameter_count();
    let pn = none.generator_mut().parameter_count();
    assert!(
        pa > ps && ps > pn,
        "skips add concat width: {pa} > {ps} > {pn}"
    );
}

#[test]
fn skip_ablations_produce_different_forecasts() {
    let config = base_config();
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config).unwrap();
    let mut outputs = Vec::new();
    for skip in [SkipMode::All, SkipMode::Single, SkipMode::None] {
        let cfg = ExperimentConfig {
            skip,
            ..config.clone()
        };
        let mut model = Pix2Pix::new(&cfg, 5).unwrap();
        let _ = model.train(&ds.pairs, 2);
        outputs.push(model.forecast(&ds.pairs[0].x));
    }
    assert_ne!(outputs[0], outputs[1]);
    assert_ne!(outputs[1], outputs[2]);
}

#[test]
fn l1_ablation_changes_objective() {
    let config = base_config();
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
    let mut with_l1 = Pix2Pix::new(&config, 7).unwrap();
    let h_with = with_l1.train(&ds.pairs, 2);

    let cfg_no = ExperimentConfig {
        use_l1: false,
        ..config.clone()
    };
    let mut without_l1 = Pix2Pix::new(&cfg_no, 7).unwrap();
    let h_without = without_l1.train(&ds.pairs, 2);

    // With L1 the generator objective carries the λ·L1 term and is larger.
    assert!(h_with.generator_loss[0] > h_without.generator_loss[0]);
    // L1 is still *recorded* in both histories.
    assert!(h_without.l1.iter().all(|&v| v > 0.0));
}

#[test]
fn grayscale_ablation_shrinks_input() {
    let config = base_config();
    let gray = ExperimentConfig {
        grayscale_input: true,
        ..config.clone()
    };
    // Fewer input channels => smaller first-layer weights.
    let mut rgb_model = Pix2Pix::new(&config, 9).unwrap();
    let mut gray_model = Pix2Pix::new(&gray, 9).unwrap();
    assert!(
        rgb_model.generator_mut().parameter_count() > gray_model.generator_mut().parameter_count()
    );
    // And the dataset produces matching tensors.
    let ds = dataset::build_design_dataset(&presets::by_name("diffeq1").unwrap(), &gray).unwrap();
    assert_eq!(ds.pairs[0].x.shape()[1], 2);
    let y = gray_model.generator_mut().forward(&ds.pairs[0].x, false);
    assert_eq!(y.shape(), ds.pairs[0].y.shape());
}
