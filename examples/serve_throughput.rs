//! Many clients, one engine: the serving-side answer to the paper's
//! "forecasting is ~0.09 s/image while routing takes minutes" speedup
//! argument. Eight client threads share one [`ForecastEngine`]; the
//! micro-batcher coalesces their requests into batched generator forwards,
//! and the run prints achieved QPS and mean batch occupancy against a
//! sequential single-request baseline.
//!
//! Run with: `cargo run --release --example serve_throughput`

use painting_on_placement as pop;
use pop::core::{ExperimentConfig, Pix2Pix};
use pop::nn::Tensor;
use pop::serve::{EngineConfig, ForecastEngine};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 64×64 quick configuration — the bench acceptance shape. Weights
    // are untrained: throughput does not depend on what the model learned.
    let config = ExperimentConfig::quick();
    let total = CLIENTS * PER_CLIENT;
    let inputs: Vec<Tensor> = (0..total)
        .map(|s| {
            Tensor::randn(
                [
                    1,
                    config.input_channels(),
                    config.resolution,
                    config.resolution,
                ],
                0.0,
                0.5,
                s as u64,
            )
        })
        .collect();

    // Baseline: one exclusive model answering the same stream sequentially.
    let mut baseline = Pix2Pix::new(&config, 1)?;
    let t = Instant::now();
    for x in &inputs {
        let _ = baseline.forecast(x);
    }
    let seq_wall = t.elapsed();
    let seq_qps = total as f64 / seq_wall.as_secs_f64();
    println!("sequential baseline: {total} forecasts in {seq_wall:.2?} -> {seq_qps:.1} QPS");

    // The engine: the same traffic from CLIENTS concurrent threads.
    let engine = ForecastEngine::start(
        Pix2Pix::new(&config, 1)?,
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..EngineConfig::default()
        },
    )?;
    let t = Instant::now();
    let handles: Vec<_> = inputs
        .chunks(PER_CLIENT)
        .map(|chunk| {
            let client = engine.client();
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                for x in &chunk {
                    client.forecast(x).expect("forecast answered");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let eng_wall = t.elapsed();
    let stats = engine.shutdown();
    let eng_qps = total as f64 / eng_wall.as_secs_f64();

    println!(
        "engine ({CLIENTS} clients):  {total} forecasts in {eng_wall:.2?} -> {eng_qps:.1} QPS"
    );
    println!(
        "batches: {} (mean occupancy {:.2}, max {}), mean latency {:.1} ms",
        stats.batches,
        stats.mean_batch_occupancy,
        stats.max_batch,
        stats.mean_latency_us / 1e3,
    );
    println!(
        "latency percentiles: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        stats.p50_latency_us as f64 / 1e3,
        stats.p99_latency_us as f64 / 1e3,
        stats.max_latency_us as f64 / 1e3,
    );
    println!("speedup over sequential: {:.2}x", eng_qps / seq_qps);
    Ok(())
}
