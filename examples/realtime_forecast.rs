//! Real-time congestion forecasting during placement (the paper's §5.4
//! demo): the annealer runs, and every few thousand moves the cGAN paints
//! the expected routing heat map of the *current*, still-moving placement.
//!
//! The forecasts are served through a `pop-serve` engine: the annealer loop
//! only holds a cheap [`ForecastClient`](pop::serve::ForecastClient), so
//! any number of concurrent placement runs could share the model while the
//! micro-batcher coalesces their requests.
//!
//! Run with: `cargo run --release --example realtime_forecast`

use painting_on_placement as pop;
use pop::core::apps::realtime_forecast_with;
use pop::core::{dataset, ExperimentConfig, Pix2Pix};
use pop::netlist::presets;
use pop::place::PlaceOptions;
use pop::serve::{EngineConfig, ForecastEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        pairs_per_design: 8,
        epochs: 6,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq1").expect("preset exists");
    let ds = dataset::build_design_dataset(&spec, &config)?;
    let mut model = Pix2Pix::new(&config, 17)?;
    let _ = model.train(&ds.pairs, config.epochs);

    let engine = ForecastEngine::start(model, EngineConfig::default())?;

    let (arch, netlist, _) = dataset::design_fabric(&spec, &config)?;
    let snapshots = realtime_forecast_with(
        &engine.client(),
        &arch,
        &netlist,
        &PlaceOptions {
            seed: 99,
            ..Default::default()
        },
        &config,
        100, // forecast every 100 annealing moves
        25,
    )?;

    println!("\nforecasting while the design is being placed:");
    println!(
        "{:>9} {:>13} {:>13} {:>10}",
        "moves", "place cost", "temperature", "predCong"
    );
    for s in &snapshots {
        let bar_len = (s.predicted_mean_congestion * 60.0).round() as usize;
        println!(
            "{:>9} {:>13.1} {:>13.4} {:>10.4} {}",
            s.moves,
            s.cost,
            s.temperature,
            s.predicted_mean_congestion,
            "#".repeat(bar_len.min(60)),
        );
    }
    println!(
        "\n{} snapshots — predicted congestion falls as the annealer optimises.",
        snapshots.len()
    );
    let stats = engine.shutdown();
    println!(
        "served {} forecasts in {} batches (mean latency {:.1} ms)",
        stats.completed,
        stats.batches,
        stats.mean_latency_us / 1e3
    );
    Ok(())
}
