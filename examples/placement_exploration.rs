//! Placement exploration for minimum congestion (the Table 2 `Top10` use
//! case): sweep placement options, forecast the congestion of every
//! candidate with the cGAN, and pick the least-congested ones *without
//! routing them*.
//!
//! Run with: `cargo run --release --example placement_exploration`

use painting_on_placement as pop;
use pop::core::{dataset, metrics, ExperimentConfig, Pix2Pix};
use pop::netlist::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        pairs_per_design: 12,
        epochs: 8,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq2").expect("preset exists");
    println!(
        "building {} placements of {} (place + route + rasterise)…",
        config.pairs_per_design, spec.name
    );
    let ds = dataset::build_design_dataset(&spec, &config)?;

    // Train on the sweep (in a real flow this model would come from other
    // designs — see the `table2` bench for leave-one-design-out training).
    let mut model = Pix2Pix::new(&config, 11)?;
    let _ = model.train(&ds.pairs, config.epochs);

    // Rank all placements by *predicted* congestion.
    let mut scored: Vec<(usize, f32, f32)> = ds
        .pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let img = model.forecast_image(&p.x);
            let predicted = metrics::image_mean_congestion(ds.grid_width, ds.grid_height, &img);
            (i, predicted, p.meta.true_mean_congestion)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!("\nplacements ranked by predicted congestion (no routing needed):");
    println!("{:>6} {:>12} {:>10}", "index", "predicted", "true");
    for (i, pred, truth) in &scored {
        println!("{:>6} {:>12.4} {:>10.4}", i, pred, truth);
    }

    let pred_scores: Vec<f32> = ds
        .pairs
        .iter()
        .enumerate()
        .map(|(i, _)| scored.iter().find(|s| s.0 == i).unwrap().1)
        .collect();
    let true_scores: Vec<f32> = ds
        .pairs
        .iter()
        .map(|p| p.meta.true_mean_congestion)
        .collect();
    let overlap = metrics::top_k_overlap(&pred_scores, &true_scores, 3);
    println!("\ntop-3 overlap with ground truth: {:.0}%", overlap * 100.0);
    Ok(())
}
