//! Quickstart: the whole pipeline on one tiny design, end to end.
//!
//! 1. Generate a scaled `diffeq1` netlist and auto-size an FPGA fabric.
//! 2. Place it with the VPR-style annealer and route it with PathFinder.
//! 3. Render the paper's Figure 2 images (floorplan / placement /
//!    connectivity / congestion heat map) as PPM files.
//! 4. Train a miniature cGAN on a handful of placements and forecast the
//!    congestion of an unseen placement.
//!
//! Run with: `cargo run --release --example quickstart`

use painting_on_placement as pop;
use pop::core::{dataset, metrics, ExperimentConfig, Pix2Pix};
use pop::netlist::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Design + fabric -------------------------------------------------
    let config = ExperimentConfig {
        pairs_per_design: 8,
        epochs: 4,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("diffeq1").expect("preset exists");
    let (arch, netlist, width) = dataset::design_fabric(&spec, &config)?;
    println!(
        "design {}: {} blocks, {} nets on a {}x{} grid (channel width {})",
        spec.name,
        netlist.blocks().len(),
        netlist.nets().len(),
        arch.width(),
        arch.height(),
        width
    );

    // --- 2. Place & route ---------------------------------------------------
    let placement = pop::place::place(&arch, &netlist, &Default::default())?;
    let routing = pop::route::route(&arch, &netlist, &placement, &Default::default())?;
    println!(
        "routed: success={}, wirelength={} segments, peak utilisation {:.2}",
        routing.success,
        routing.wirelength(),
        routing.congestion().max_utilization()
    );

    // --- 3. The paper's images ----------------------------------------------
    let side = 128;
    let out = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out)?;
    pop::raster::render_floorplan(&arch, side).write_pnm(out.join("img_floor.ppm"))?;
    pop::raster::render_placement(&arch, &netlist, &placement, side)
        .write_pnm(out.join("img_place.ppm"))?;
    pop::raster::render_connectivity(&arch, &netlist, &placement, side)
        .write_pnm(out.join("img_connect.pgm"))?;
    pop::raster::render_congestion(&arch, &netlist, &placement, routing.congestion(), side)
        .write_pnm(out.join("img_route.ppm"))?;
    println!("wrote Figure 2-style images to {}", out.display());

    // --- 4. Train a miniature forecaster ------------------------------------
    let ds = dataset::build_design_dataset(&spec, &config)?;
    let (train, test) = ds.pairs.split_at(ds.pairs.len() - 2);
    let mut model = Pix2Pix::new(&config, 7)?;
    let history = model.train(train, config.epochs);
    println!(
        "trained {} epochs: L1 {:.3} -> {:.3}",
        config.epochs,
        history.l1.first().unwrap(),
        history.l1.last().unwrap()
    );
    let acc = metrics::evaluate_accuracy(&mut model, test, config.tolerance)?;
    println!(
        "per-pixel accuracy on 2 held-out placements: {:.1}%",
        acc * 100.0
    );
    model
        .forecast_image(&test[0].x)
        .write_pnm(out.join("forecast.ppm"))?;
    println!(
        "forecast heat map written to {}/forecast.ppm",
        out.display()
    );
    Ok(())
}
