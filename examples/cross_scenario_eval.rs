//! Cross-scenario evaluation in a dozen lines: train a model per
//! scenario through the streaming pipeline, score every model on every
//! scenario's held-out split, and read the generalization gap.
//!
//! ```text
//! cargo run --release --example cross_scenario_eval
//! ```
//!
//! This is the API-shaped miniature; `cargo run --release --bin
//! eval_matrix` is the real experiment (bigger corpora, replicates,
//! `BENCH_eval.json`).

use painting_on_placement as pop;
use pop::eval::{evaluate_matrix, MatrixSpec};
use pop::pipeline::{scenario, PipelineOptions, ScenarioSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two 16x16 scenarios: the smoke design and a different design
    // family (a genuine distribution shift, small enough for seconds).
    let smoke = scenario::by_name("smoke").expect("registry scenario");
    let shifted = ScenarioSpec {
        name: "smoke-shift".into(),
        design: "diffeq1".into(),
        ..smoke.clone()
    };

    let mut spec = MatrixSpec::new(vec![smoke, shifted]);
    spec.train_epochs = 3;
    spec.eval_pairs = 3;
    spec.options = PipelineOptions::with_workers(4);

    let matrix = evaluate_matrix(&spec)?;
    assert!(matrix.is_complete(), "complete, NaN-free matrix");

    println!("scenarios: {:?}", matrix.scenarios);
    for (i, row) in matrix.cells.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            println!(
                "  train {} -> eval {}: acc1 {:.3}, top {:.3}, nrms {:.4}",
                matrix.scenarios[i],
                matrix.scenarios[j],
                cell.mean.acc1,
                cell.mean.top,
                cell.mean.nrms
            );
        }
    }
    let gap = matrix
        .generalization_gap()
        .expect("a 2x2 matrix has off-diagonal cells");
    println!(
        "generalization gap: acc1 {:+.3}, top {:+.3}, nrms {:+.4}",
        gap.acc1, gap.top, gap.nrms
    );
    // Every eval split was generated past the training epochs' seed
    // range and the RUDY baseline was scored with the same MetricSet.
    for (name, baseline) in matrix.scenarios.iter().zip(&matrix.baseline) {
        let b = baseline.expect("baseline enabled by default");
        println!(
            "RUDY on {name}: channel accuracy {:.3}, spearman {:.3}",
            b.channel_accuracy, b.spearman
        );
    }
    Ok(())
}
