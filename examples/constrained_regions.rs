//! Constrained placement exploration (the paper's Figure 9): find the
//! placements whose congestion is lowest in a chosen *region* of the
//! floorplan — e.g. to keep the upper half cool for a later ECO — using
//! only forecasts.
//!
//! Run with: `cargo run --release --example constrained_regions`

use painting_on_placement as pop;
use pop::core::apps::{constrained_exploration, Objective, Region};
use pop::core::{dataset, ExperimentConfig, Pix2Pix};
use pop::netlist::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        pairs_per_design: 10,
        epochs: 8,
        ..ExperimentConfig::test()
    };
    let spec = presets::by_name("ode").expect("preset exists");
    println!(
        "building {} placements of {}…",
        config.pairs_per_design, spec.name
    );
    let ds = dataset::build_design_dataset(&spec, &config)?;

    let mut model = Pix2Pix::new(&config, 13)?;
    let _ = model.train(&ds.pairs, config.epochs);

    // The five objectives of Figure 9.
    let queries = [
        (Region::Overall, Objective::Max),
        (Region::Overall, Objective::Min),
        (Region::Upper, Objective::Min),
        (Region::Lower, Objective::Min),
        (Region::Right, Objective::Min),
    ];
    let results = constrained_exploration(&mut model, &ds, &queries);

    println!(
        "\n{:<22} {:>7} {:>11} {:>9} {:>9}",
        "objective", "chosen", "predicted", "true", "trueRank"
    );
    for r in &results {
        println!(
            "{:<22} {:>7} {:>11.4} {:>9.4} {:>9}",
            format!("{:?}-{:?}", r.region, r.objective),
            r.chosen,
            r.predicted_score,
            r.true_score_of_chosen,
            r.true_rank_of_chosen,
        );
    }
    println!("\n(trueRank 0 means the forecast picked the truly optimal placement)");
    Ok(())
}
