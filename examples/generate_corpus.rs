//! End-to-end pipeline smoke: generate a scenario corpus on the staged
//! parallel pipeline (optionally through the per-job disk cache), check it
//! against the sequential reference, and hand the pairs to a resumable
//! streamed training run.
//!
//! ```text
//! cargo run --release --example generate_corpus [scenario] \
//!     [--cache-dir DIR] [--cache-budget BYTES] [--resume] \
//!     [--regions K] [--place-threads T] [--pool-mode persistent|respawn] \
//!     [--trace-out PATH]
//! ```
//!
//! * `--cache-dir DIR` — generate through a `CorpusStore` rooted at `DIR`:
//!   the first run is cold (writes per-job caches as jobs complete), a
//!   re-run is warm (100% cache hits, zero place/route stage executions)
//!   and must produce a bitwise-identical corpus checksum. The streaming
//!   training demo spills its epochs to `DIR/ring`. Concurrent cold runs
//!   over one `DIR` coordinate through per-entry claim files: the second
//!   process waits for the first instead of duplicating its work.
//! * `--cache-budget BYTES` — bound the store's total size (suffixes
//!   `K`/`M`/`G` accepted); least-recently-used entries are swept after
//!   each write.
//! * `--resume` — honour the epoch ring's progress marker **and** the
//!   model checkpoint saved next to it: an interrupted run picks up at
//!   the first untrained epoch *with the trained weights* instead of
//!   regenerating data from seeds and weights from init. Without the flag
//!   the ring (and model) are reset and training starts from epoch 0.
//! * `--regions K --place-threads T` — anneal every placement with the
//!   region-parallel annealer (`PlaceStrategy::ParallelRegions`): the
//!   single-large-design case where the sweep alone cannot fill the
//!   worker pool. The corpus checksum is identical for every `T` at the
//!   same `K` — thread count never changes the data (the CI parallel
//!   smoke pins this).
//! * `--pool-mode persistent|respawn` — pick the region-parallel worker
//!   strategy: the persistent park/unpark pool (default) or per-round
//!   scoped respawn. Both must produce the same corpus checksum; CI
//!   diffs the two.
//! * `--trace-out PATH` — enable span tracing and write a
//!   `pop_obs::RunReport` (span tree + metric snapshot + wall clock) to
//!   `PATH` at exit. The run self-validates the report: it parses the
//!   written file back with `pop_obs::json::parse` and, on cold runs,
//!   asserts every pipeline stage (prep/place/route/raster) recorded at
//!   least one span. The CI obs-smoke greps the printed `trace …` lines.

use painting_on_placement as pop;
use pop::core::dataset::DesignDataset;
use pop::core::Pix2Pix;
use pop::pipeline::{
    generate_corpus_sequential, generate_corpus_with_stats, scenario, EpochPrefetcher, EpochRing,
    PipelineOptions, TrainCheckpoint,
};
use pop::place::PlaceStrategy;

/// Parses `512`, `64K`/`64KB`, `16M`/`16MB` or `1G`/`1GB` into bytes;
/// an unrecognised suffix is an error, never a silently wrong multiplier.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, suffix) = s.split_at(split);
    let mult: u64 = match suffix.to_ascii_uppercase().as_str() {
        "" => 1,
        "K" | "KB" => 1 << 10,
        "M" | "MB" => 1 << 20,
        "G" | "GB" => 1 << 30,
        other => return Err(format!("bad byte suffix '{other}' in '{s}'")),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad byte count '{s}'"))
}

/// FNV-1a over every value of every pair. With `with_timings`, the
/// wall-clock provenance is folded in too (the cache round-trips it
/// bitwise, so cold-vs-warm runs must agree on the full checksum);
/// without, the checksum covers only the deterministic data — the number
/// two *fresh* generations are compared by (e.g. the CI parallel smoke's
/// thread-count-invariance check).
fn corpus_checksum(corpus: &[DesignDataset], with_timings: bool) -> u64 {
    let mut h = pop::core::dataset::Fnv1a::new();
    for ds in corpus {
        h.eat_bytes(ds.name.as_bytes());
        h.eat(ds.channel_width as u64);
        for p in &ds.pairs {
            h.eat(p.meta.index as u64);
            h.eat(p.meta.place_seed);
            h.eat(p.meta.true_mean_congestion.to_bits() as u64);
            h.eat(p.meta.true_max_congestion.to_bits() as u64);
            if with_timings {
                h.eat(p.meta.route_micros);
                h.eat(p.meta.place_micros);
            }
            for v in p.x.data().iter().chain(p.y.data()) {
                h.eat(v.to_bits() as u64);
            }
        }
    }
    h.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut name = "smoke".to_string();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_budget: Option<u64> = None;
    let mut resume = false;
    let mut regions: Option<usize> = None;
    let mut place_threads = 4usize;
    let mut pool_mode: Option<pop::exec::PoolMode> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => {
                cache_dir = Some(args.next().ok_or("--cache-dir needs a path")?.into());
            }
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?.into());
            }
            "--cache-budget" => {
                cache_budget = Some(parse_bytes(
                    &args.next().ok_or("--cache-budget needs a byte count")?,
                )?);
            }
            "--resume" => resume = true,
            "--regions" => {
                regions = Some(args.next().ok_or("--regions needs a count")?.parse()?);
            }
            "--place-threads" => {
                place_threads = args
                    .next()
                    .ok_or("--place-threads needs a count")?
                    .parse()?;
            }
            "--pool-mode" => {
                let mode = args
                    .next()
                    .ok_or("--pool-mode needs 'persistent' or 'respawn'")?;
                pool_mode = Some(match mode.as_str() {
                    "persistent" => pop::exec::PoolMode::Persistent,
                    "respawn" => pop::exec::PoolMode::ScopedRespawn,
                    other => {
                        return Err(format!(
                            "unknown pool mode '{other}' (expected 'persistent' or 'respawn')"
                        )
                        .into())
                    }
                });
            }
            other => name = other.to_string(),
        }
    }
    // Tracing is enabled before any pipeline work so the report's span
    // window covers corpus generation AND the streamed training epochs.
    let run_started = std::time::Instant::now();
    if trace_out.is_some() {
        pop::obs::enable_tracing();
    }

    let mut spec = scenario::by_name(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see pop::pipeline::scenario)"))?;
    if let Some(regions) = regions {
        spec.place_strategy = PlaceStrategy::ParallelRegions {
            regions,
            threads: place_threads,
        };
        println!("place strategy: parallel ({regions} regions, {place_threads} threads)");
    }
    if let Some(mode) = pool_mode {
        // The corpus checksum must be identical in either mode: the
        // persistent park/unpark pool is pure plumbing over run_scoped
        // (the CI parallel smoke pins this by diffing checksums).
        pop::exec::set_pool_mode(mode);
        let label = match mode {
            pop::exec::PoolMode::Persistent => "persistent",
            pop::exec::PoolMode::ScopedRespawn => "respawn",
        };
        println!("annealer pool mode: {label}");
    }
    let spec_name = spec.name.clone();
    println!(
        "scenario '{}': design {}, {} variant(s) x {} pairs at {}x{} px",
        spec.name,
        spec.design,
        spec.variants,
        spec.pairs_per_design,
        spec.resolution,
        spec.resolution
    );

    let mut opts = PipelineOptions::with_workers(4);
    if let Some(dir) = &cache_dir {
        opts = opts.with_cache_dir(dir);
        println!("cache dir: {}", dir.display());
    }
    if let Some(bytes) = cache_budget {
        opts = opts.with_cache_budget(bytes);
        println!("cache budget: {bytes} bytes (LRU sweep after each write)");
    }
    let (corpus, stats) = generate_corpus_with_stats(std::slice::from_ref(&spec), &opts)?;
    println!(
        "cache hits: {}/{} (place-stage runs: {}, route-stage runs: {})",
        stats.cache_hits, stats.jobs, stats.place_stage_runs, stats.route_stage_runs
    );
    // The global observability counters must tell the same story as this
    // run's GenStats ledger (this is the first pipeline run in the
    // process, so the registry deltas ARE this run's totals).
    {
        let snap = pop::obs::global().snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let (hits, misses) = (
            counter("pipeline.cache.hits"),
            counter("pipeline.cache.misses"),
        );
        assert_eq!(hits, stats.cache_hits as u64, "obs hit counter vs stats");
        if cache_dir.is_some() {
            assert_eq!(
                misses,
                (stats.jobs - stats.cache_hits) as u64,
                "obs miss counter vs stats"
            );
        }
        assert_eq!(counter("pipeline.jobs"), stats.jobs as u64);
        println!("obs cache counters agree with pipeline stats (hits {hits}, misses {misses})");
    }
    let warm = stats.cache_hits == stats.jobs;
    if warm {
        assert_eq!(
            (stats.place_stage_runs, stats.route_stage_runs),
            (0, 0),
            "a fully warm run must not execute place/route stages"
        );
        println!("warm run: corpus streamed straight from disk");
    } else {
        // Cold (or partially cold) runs are cross-checked against the
        // sequential reference path pair by pair; warm runs are instead
        // pinned by the checksum, which must equal the cold run's.
        let reference = generate_corpus_sequential(std::slice::from_ref(&spec))?;
        for (p, s) in corpus.iter().zip(&reference) {
            assert_eq!(p.pairs.len(), s.pairs.len());
            for (pp, sp) in p.pairs.iter().zip(&s.pairs) {
                assert_eq!(
                    pp.without_timings(),
                    sp.without_timings(),
                    "pipeline output diverged from the sequential path"
                );
            }
        }
        println!("parallel output is bitwise-identical to the sequential path");
    }
    for ds in &corpus {
        println!(
            "  {}: {} pairs, fabric {}x{} (channel width {})",
            ds.name,
            ds.pairs.len(),
            ds.grid_width,
            ds.grid_height,
            ds.channel_width
        );
    }
    println!("corpus checksum: {:016x}", corpus_checksum(&corpus, true));
    println!("data checksum: {:016x}", corpus_checksum(&corpus, false));

    // Background prefetch feeding the streaming trainer: epoch 2 generates
    // while epoch 1 trains. With a cache dir, epochs spill into an
    // EpochRing so an interrupted (or re-run) training session resumes
    // from the last completed epoch instead of regenerating from seeds.
    let epochs = 2;
    let config = spec.config();
    let history = match &cache_dir {
        Some(dir) => {
            let ring_dir = dir.join("ring");
            if !resume {
                let _ = std::fs::remove_dir_all(&ring_dir);
            }
            let ring = EpochRing::new(&ring_dir, epochs.max(2));
            // Weights checkpoint alongside the epoch ring: a resumed run
            // continues from the trained model, not fresh initialisation.
            let mut checkpoint = TrainCheckpoint::new(ring.clone(), ring_dir.join("model.ckpt"));
            let mut model = match checkpoint.restore(&config)? {
                Some(model) if resume => {
                    println!(
                        "model checkpoint: restored weights + optimiser state ({} epoch(s) already trained)",
                        ring.completed_epochs()
                    );
                    model
                }
                _ => {
                    if resume && ring.completed_epochs() > 0 {
                        // Trained epochs but no model checkpoint (data-only
                        // ring from an older run, or a deleted file):
                        // resuming the data stream under fresh weights
                        // would silently skip training — reset the ring so
                        // data and weights restart together.
                        println!(
                            "model checkpoint missing: resetting the epoch ring so data and                              weights restart together"
                        );
                        let _ = std::fs::remove_dir_all(&ring_dir);
                    }
                    Pix2Pix::new(&config, 7)?
                }
            };
            let prefetcher =
                EpochPrefetcher::start_with_ring(vec![spec], opts, epochs, 1, ring.clone());
            println!(
                "streaming training resumed at epoch {}",
                prefetcher.first_epoch()
            );
            let stream: Result<Vec<_>, _> = prefetcher.collect();
            model.train_stream_resumable(stream?, &mut checkpoint)
        }
        None => {
            let mut model = Pix2Pix::new(&config, 7)?;
            let prefetcher = EpochPrefetcher::start(vec![spec], opts, epochs, 1);
            let stream: Result<Vec<_>, _> = prefetcher.collect();
            model.train_stream(stream?)
        }
    };
    println!(
        "streamed {} training epoch(s); final G loss {:.4}",
        history.generator_loss.len(),
        history.generator_loss.last().copied().unwrap_or(f32::NAN)
    );

    if let Some(path) = &trace_out {
        let report = pop::obs::RunReport::capture(
            &format!("generate_corpus:{}", spec_name),
            run_started,
            pop::obs::global(),
        );
        report.write_json(path)?;
        // Self-validate: the written artifact must parse back with the
        // crate's own JSON reader — the same check the CI obs-smoke does.
        let text = std::fs::read_to_string(path)?;
        pop::obs::json::parse(&text).map_err(|e| format!("trace report invalid: {e}"))?;
        let span_count = |name: &str| {
            pop::obs::find_span(&report.spans, name)
                .map(|n| n.count)
                .unwrap_or(0)
        };
        let stages = [
            ("prep", span_count("prep")),
            ("place_stage", span_count("place_stage")),
            ("route_stage", span_count("route_stage")),
            ("raster_stage", span_count("raster_stage")),
            ("train_epoch", span_count("train_epoch")),
        ];
        println!(
            "trace report: {} ({} root spans, {} dropped) parses OK",
            path.display(),
            report.spans.len(),
            report.dropped_spans
        );
        let rendered: Vec<String> = stages.iter().map(|(n, c)| format!("{n}={c}")).collect();
        println!("trace stage spans: {}", rendered.join(" "));
        if !warm {
            // A cold run executed every stage at least once; the span
            // tree must show it. (Warm runs legitimately skip
            // place/route, so coverage is only asserted when cold.)
            for (name, count) in &stages {
                assert!(*count > 0, "cold run recorded no '{name}' spans");
            }
            println!("trace stage coverage: all pipeline stages recorded");
        }
    }
    Ok(())
}
