//! End-to-end pipeline smoke: generate a scenario corpus on the staged
//! parallel pipeline (optionally through the per-job disk cache), check it
//! against the sequential reference, and hand the pairs to a resumable
//! streamed training run.
//!
//! ```text
//! cargo run --release --example generate_corpus [scenario] \
//!     [--cache-dir DIR] [--resume]
//! ```
//!
//! * `--cache-dir DIR` — generate through a `CorpusStore` rooted at `DIR`:
//!   the first run is cold (writes per-job caches as jobs complete), a
//!   re-run is warm (100% cache hits, zero place/route stage executions)
//!   and must produce a bitwise-identical corpus checksum. The streaming
//!   training demo spills its epochs to `DIR/ring`.
//! * `--resume` — honour the epoch ring's progress marker: a run
//!   interrupted (or completed) earlier picks up at the first untrained
//!   epoch instead of regenerating from seeds. Without the flag the ring
//!   is reset and training starts from epoch 0.

use painting_on_placement as pop;
use pop::core::dataset::DesignDataset;
use pop::core::Pix2Pix;
use pop::pipeline::{
    generate_corpus_sequential, generate_corpus_with_stats, scenario, EpochPrefetcher, EpochRing,
    PipelineOptions,
};

/// FNV-1a over every value of every pair (tensors + full provenance,
/// wall-clock timings included: the cache round-trips them bitwise).
fn corpus_checksum(corpus: &[DesignDataset]) -> u64 {
    let mut h = pop::core::dataset::Fnv1a::new();
    for ds in corpus {
        h.eat_bytes(ds.name.as_bytes());
        h.eat(ds.channel_width as u64);
        for p in &ds.pairs {
            h.eat(p.meta.index as u64);
            h.eat(p.meta.place_seed);
            h.eat(p.meta.true_mean_congestion.to_bits() as u64);
            h.eat(p.meta.true_max_congestion.to_bits() as u64);
            h.eat(p.meta.route_micros);
            h.eat(p.meta.place_micros);
            for v in p.x.data().iter().chain(p.y.data()) {
                h.eat(v.to_bits() as u64);
            }
        }
    }
    h.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut name = "smoke".to_string();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => {
                cache_dir = Some(args.next().ok_or("--cache-dir needs a path")?.into());
            }
            "--resume" => resume = true,
            other => name = other.to_string(),
        }
    }
    let spec = scenario::by_name(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see pop::pipeline::scenario)"))?;
    println!(
        "scenario '{}': design {}, {} variant(s) x {} pairs at {}x{} px",
        spec.name,
        spec.design,
        spec.variants,
        spec.pairs_per_design,
        spec.resolution,
        spec.resolution
    );

    let mut opts = PipelineOptions::with_workers(4);
    if let Some(dir) = &cache_dir {
        opts = opts.with_cache_dir(dir);
        println!("cache dir: {}", dir.display());
    }
    let (corpus, stats) = generate_corpus_with_stats(std::slice::from_ref(&spec), &opts)?;
    println!(
        "cache hits: {}/{} (place-stage runs: {}, route-stage runs: {})",
        stats.cache_hits, stats.jobs, stats.place_stage_runs, stats.route_stage_runs
    );
    let warm = stats.cache_hits == stats.jobs;
    if warm {
        assert_eq!(
            (stats.place_stage_runs, stats.route_stage_runs),
            (0, 0),
            "a fully warm run must not execute place/route stages"
        );
        println!("warm run: corpus streamed straight from disk");
    } else {
        // Cold (or partially cold) runs are cross-checked against the
        // sequential reference path pair by pair; warm runs are instead
        // pinned by the checksum, which must equal the cold run's.
        let reference = generate_corpus_sequential(std::slice::from_ref(&spec))?;
        for (p, s) in corpus.iter().zip(&reference) {
            assert_eq!(p.pairs.len(), s.pairs.len());
            for (pp, sp) in p.pairs.iter().zip(&s.pairs) {
                assert_eq!(
                    pp.without_timings(),
                    sp.without_timings(),
                    "pipeline output diverged from the sequential path"
                );
            }
        }
        println!("parallel output is bitwise-identical to the sequential path");
    }
    for ds in &corpus {
        println!(
            "  {}: {} pairs, fabric {}x{} (channel width {})",
            ds.name,
            ds.pairs.len(),
            ds.grid_width,
            ds.grid_height,
            ds.channel_width
        );
    }
    println!("corpus checksum: {:016x}", corpus_checksum(&corpus));

    // Background prefetch feeding the streaming trainer: epoch 2 generates
    // while epoch 1 trains. With a cache dir, epochs spill into an
    // EpochRing so an interrupted (or re-run) training session resumes
    // from the last completed epoch instead of regenerating from seeds.
    let epochs = 2;
    let config = spec.config();
    let mut model = Pix2Pix::new(&config, 7)?;
    let history = match &cache_dir {
        Some(dir) => {
            let ring_dir = dir.join("ring");
            if !resume {
                let _ = std::fs::remove_dir_all(&ring_dir);
            }
            let mut ring = EpochRing::new(&ring_dir, epochs.max(2));
            let prefetcher =
                EpochPrefetcher::start_with_ring(vec![spec], opts, epochs, 1, ring.clone());
            println!(
                "streaming training resumed at epoch {}",
                prefetcher.first_epoch()
            );
            let stream: Result<Vec<_>, _> = prefetcher.collect();
            model.train_stream_resumable(stream?, &mut ring)
        }
        None => {
            let prefetcher = EpochPrefetcher::start(vec![spec], opts, epochs, 1);
            let stream: Result<Vec<_>, _> = prefetcher.collect();
            model.train_stream(stream?)
        }
    };
    println!(
        "streamed {} training epoch(s); final G loss {:.4}",
        history.generator_loss.len(),
        history.generator_loss.last().copied().unwrap_or(f32::NAN)
    );
    Ok(())
}
