//! End-to-end pipeline smoke: generate the "smoke" scenario corpus on the
//! staged parallel pipeline, check it against the sequential reference, and
//! hand the pairs to one streamed training epoch.
//!
//! Run with `cargo run --release --example generate_corpus [scenario]`.

use painting_on_placement as pop;
use pop::core::Pix2Pix;
use pop::pipeline::{
    generate_corpus, generate_corpus_sequential, scenario, EpochPrefetcher, PipelineOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    let spec = scenario::by_name(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see pop::pipeline::scenario)"))?;
    println!(
        "scenario '{}': design {}, {} variant(s) x {} pairs at {}x{} px",
        spec.name,
        spec.design,
        spec.variants,
        spec.pairs_per_design,
        spec.resolution,
        spec.resolution
    );

    let opts = PipelineOptions::with_workers(4);
    let corpus = generate_corpus(std::slice::from_ref(&spec), &opts)?;
    let reference = generate_corpus_sequential(std::slice::from_ref(&spec))?;
    for (p, s) in corpus.iter().zip(&reference) {
        assert_eq!(p.pairs.len(), s.pairs.len());
        for (pp, sp) in p.pairs.iter().zip(&s.pairs) {
            assert_eq!(
                pp.without_timings(),
                sp.without_timings(),
                "pipeline output diverged from the sequential path"
            );
        }
    }
    for ds in &corpus {
        println!(
            "  {}: {} pairs, fabric {}x{} (channel width {})",
            ds.name,
            ds.pairs.len(),
            ds.grid_width,
            ds.grid_height,
            ds.channel_width
        );
    }
    println!("parallel output is bitwise-identical to the sequential path");

    // Background prefetch feeding the streaming trainer: epoch 2 generates
    // while epoch 1 trains.
    let config = spec.config();
    let mut model = Pix2Pix::new(&config, 7)?;
    let prefetcher = EpochPrefetcher::start(vec![spec], opts, 2, 1);
    let epochs: Result<Vec<_>, _> = prefetcher.collect();
    let history = model.train_stream(epochs?);
    println!(
        "streamed {} training epochs; final G loss {:.4}",
        history.generator_loss.len(),
        history.generator_loss.last().copied().unwrap_or(f32::NAN)
    );
    Ok(())
}
