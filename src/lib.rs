//! **Painting on Placement** — a Rust reproduction of Yu & Zhang,
//! *"Painting on Placement: Forecasting Routing Congestion using Conditional
//! Generative Adversarial Nets"*, DAC 2019.
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`arch`] — FPGA fabric model (grid, columns, channels);
//! * [`netlist`] — packed netlists + the eight Table 2 design presets;
//! * [`place`] — VPR-style simulated-annealing placer and option sweep;
//! * [`route`] — PathFinder router and congestion-map extraction;
//! * [`raster`] — placement / connectivity / congestion image rendering;
//! * [`nn`] — the pure-Rust neural-network substrate;
//! * [`exec`] — the shared concurrency substrate (bounded MPMC queues,
//!   worker pools) both the serving engine and the data pipeline run on;
//! * [`obs`] — the zero-dependency observability substrate: a process
//!   global metrics registry (counters, gauges, log-bucketed latency
//!   histograms), `span!`-based tracing with self/child time attribution,
//!   and the JSON [`obs::RunReport`] binaries write via `--trace-out`;
//! * [`core`] — the paper's contribution: the cGAN congestion forecaster,
//!   its trainer, dataset pipeline, metrics and applications;
//! * [`pipeline`] — the streaming, multi-threaded scenario/data-generation
//!   pipeline: declarative [`pipeline::ScenarioSpec`] corpora, staged
//!   worker pools producing bitwise-identical datasets in parallel, and
//!   background epoch prefetch for the trainer;
//! * [`serve`] — the batched forecast-serving engine: micro-batching
//!   worker pool, LRU model registry, backpressured clients and serving
//!   telemetry for running many concurrent forecast streams against
//!   trained checkpoints;
//! * [`http`] — the zero-dependency HTTP/1.1 front end over [`serve`]:
//!   bounded request parsing, a JSON forecast API with bitwise-exact
//!   float transport, per-model routing, admission control mapped to
//!   HTTP semantics (`429`/`503` + `Retry-After`) and graceful drain;
//! * [`eval`] — the scenario-conditioned evaluation harness: per-scenario
//!   models trained through the streaming pipeline and scored against
//!   every scenario's held-out split, producing the K×K cross-scenario
//!   generalization matrix ([`eval::MatrixSpec`] /
//!   [`eval::evaluate_matrix`]).
//!
//! # Quickstart
//!
//! ```
//! use painting_on_placement as pop;
//!
//! // A miniature end-to-end run: generate a design, place it, route it and
//! // rasterise the paper's images.
//! let spec = pop::netlist::presets::by_name("diffeq1").unwrap().scaled(0.02);
//! let netlist = pop::netlist::generate(&spec);
//! let (clbs, ios, mems, mults) = netlist.site_demand();
//! let arch = pop::arch::Arch::auto_size(clbs, ios, mems, mults, 12, 1.3)?;
//!
//! let options = pop::place::PlaceOptions::default();
//! let placement = pop::place::place(&arch, &netlist, &options)?;
//!
//! let routing = pop::route::route(&arch, &netlist, &placement, &Default::default())?;
//! let heat = pop::raster::render_congestion(&arch, &netlist, &placement, routing.congestion(), 64);
//! assert_eq!(heat.width(), 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//! # Generating corpora
//!
//! Training/eval corpora are described declaratively and generated on the
//! staged parallel pipeline (bitwise-identical to the sequential path):
//!
//! ```
//! use painting_on_placement as pop;
//! use pop::pipeline::{generate_corpus, scenario, PipelineOptions};
//!
//! let smoke = scenario::by_name("smoke").unwrap();
//! let corpus = generate_corpus(&[smoke], &PipelineOptions::with_workers(2))?;
//! assert_eq!(corpus[0].pairs.len(), 2);
//! # Ok::<(), pop::pipeline::PipelineError>(())
//! ```

//! # Serving forecasts
//!
//! Trained models are served through [`serve::ForecastEngine`], which
//! coalesces concurrent requests into batched forward passes:
//!
//! ```
//! use painting_on_placement as pop;
//! use pop::core::{ExperimentConfig, Pix2Pix};
//! use pop::nn::Tensor;
//! use pop::serve::{EngineConfig, ForecastEngine};
//!
//! let config = ExperimentConfig { resolution: 16, base_filters: 4, depth: 3,
//!                                 ..ExperimentConfig::test() };
//! let engine = ForecastEngine::start(Pix2Pix::new(&config, 1)?, EngineConfig::default())?;
//! let client = engine.client(); // cloneable; share freely across threads
//! let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 7);
//! let heat = client.forecast(&x)?;
//! assert_eq!(heat.width(), 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use pop_arch as arch;
pub use pop_core as core;
pub use pop_eval as eval;
pub use pop_exec as exec;
pub use pop_http as http;
pub use pop_netlist as netlist;
pub use pop_nn as nn;
pub use pop_obs as obs;
pub use pop_pipeline as pipeline;
pub use pop_place as place;
pub use pop_raster as raster;
pub use pop_route as route;
pub use pop_serve as serve;
